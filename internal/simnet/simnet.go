// Package simnet is the in-process message transport that connects the
// Pastry nodes of a simulated datacenter. Delivery latency follows the
// physical topology (same rack is faster than cross-pod), messages arrive
// asynchronously through the discrete-event engine, and per-node traffic
// counters feed the paper's overhead experiments (Table I, Fig. 15).
//
// The transport also supports failure injection (killed nodes silently drop
// traffic, like a crashed server) and probabilistic message loss, which the
// overlay's self-repair tests exercise.
package simnet

import (
	"fmt"
	"slices"
	"time"

	"vbundle/internal/obs"
	"vbundle/internal/sim"
)

// Addr identifies an endpoint on the network. In v-Bundle simulations the
// address of a node equals its server index in the topology.
type Addr int

// Nowhere is an invalid address, usable as a sentinel.
const Nowhere Addr = -1

// Message is any value carried by the network (an alias, so handlers may
// be written with plain any). Concrete message types may implement
// WireSizer to report realistic sizes for the overhead counters; otherwise
// DefaultWireSize is assumed.
type Message = any

// WireSizer lets a message type report its approximate serialized size in
// bytes for traffic accounting.
type WireSizer interface {
	WireSize() int
}

// DefaultWireSize is the byte size charged for messages that do not
// implement WireSizer.
const DefaultWireSize = 64

// Handler receives messages delivered to a node.
type Handler interface {
	HandleMessage(from Addr, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(from Addr, msg Message) { f(from, msg) }

var _ Handler = HandlerFunc(nil)

// LatencyFunc returns the one-way delivery latency between two addresses.
type LatencyFunc func(a, b Addr) time.Duration

// Counters accumulates per-node traffic statistics. Counts are cumulative
// until ResetCounters.
type Counters struct {
	// MsgsSent and MsgsReceived count delivered messages (drops excluded
	// from MsgsReceived, included in MsgsSent).
	MsgsSent, MsgsReceived int
	// BytesSent and BytesReceived use WireSizer sizes when available.
	BytesSent, BytesReceived int
}

// LinkFault is a scheduled window of elevated loss on matching links: every
// message sent from From to To inside [Start, End) is dropped with
// probability Rate, on top of the network's base drop rate. Nowhere acts as
// a wildcard on either endpoint, so {Nowhere, Nowhere} degrades the whole
// fabric for the window.
type LinkFault struct {
	From, To   Addr
	Start, End time.Duration
	Rate       float64
}

// matches reports whether the fault applies to a src→dst send at time now.
func (f LinkFault) matches(src, dst Addr, now time.Duration) bool {
	if now < f.Start || now >= f.End {
		return false
	}
	if f.From != Nowhere && f.From != src {
		return false
	}
	if f.To != Nowhere && f.To != dst {
		return false
	}
	return true
}

// NodeFault schedules a fault of one address at a virtual-clock instant,
// with an optional restart after RestartAfter (0 = stays dead).
//
// Crash selects true crash semantics: the handler is discarded at At, so
// the node loses every piece of soft state, and the restart goes through
// the registered restarter (SetRestarter) which must rebuild the node from
// scratch plus whatever durable state it persisted. Crash=false is the
// legacy pause ("the process froze and thawed"): the old handler survives
// and Revive reattaches it — appropriate for link-style blips, a lie for
// server crashes.
type NodeFault struct {
	Addr         Addr
	At           time.Duration
	RestartAfter time.Duration
	Crash        bool
}

// FaultSchedule groups timed fault injections for resilience experiments:
// per-link loss windows and server crash/restart events, all on the
// engine's virtual clock.
type FaultSchedule struct {
	Links []LinkFault
	Nodes []NodeFault
}

// Network is a simulated datagram network. It must be driven by exactly one
// sim.Engine; all handlers run on the engine's event loop.
//
// Delivery is batched by default: all messages due at one (destination,
// timestamp) pair are coalesced into a single engine event that drains the
// destination's inbox ring buffer, so a fan-in of k messages costs one
// event and zero per-message closures instead of k closure allocations and
// k queue operations. Messages within a batch are delivered in send order —
// exactly the order the per-message scheme executes them — and liveness and
// counter checks happen per message at delivery time, so drop, kill and
// accounting semantics are identical (asserted by the delivery-mode
// equivalence tests).
type Network struct {
	engine   *sim.Engine
	latency  LatencyFunc
	nodes    []slot
	counters []Counters
	dropRate float64

	// perMessage restores the original one-event-per-message delivery;
	// retained for the batching equivalence tests and benchmarks. It is
	// incompatible with a sharded engine (New panics): batching is what
	// gives cross-shard merges a one-event-per-(destination, instant) shape.
	perMessage bool
	inboxes    []inbox
	// flush holds one pre-bound flush closure per destination, created at
	// New; steady-state sends allocate nothing, and under sharding the
	// closures already exist before any cross-shard merge can need them.
	flush []func()
	// scratches holds one extraction buffer per shard (index 0 on a serial
	// engine): a flush fully consumes its shard's buffer before returning.
	scratches [][]pending

	// sendSeq numbers each node's sends monotonically (never reset, unlike
	// the counters). The (source, send index) pair keys delivery order and
	// the drop draws, making both independent of the shard layout.
	sendSeq []uint64
	// dropSalt seeds the per-message drop hash, derived from the engine seed.
	dropSalt uint64

	// Sharded-engine plumbing (nil on a serial engine): each address is
	// pinned to the shard engine of a deterministic hash of the address.
	// Same-shard traffic is delivered exactly like the serial path;
	// cross-shard sends park in the sender shard's outbox and are merged
	// into destination inboxes at every window barrier.
	engines  []*sim.Engine
	shardID  []int32
	outboxes [][]outMsg

	// onLiveness observers are told about every alive↔dead transition;
	// pastry.Ring maintains its live-node bitmap through this hook.
	onLiveness []func(addr Addr, alive bool)

	// restarter rebuilds a crashed node's stack when Restart fires. It must
	// end by attaching a handler for the address (a rebuilt pastry node does
	// this in its constructor); Restart panics otherwise.
	restarter func(addr Addr)

	// linkFaults holds the scheduled loss windows; Send consults them only
	// while the slice is non-empty, so fault-free runs pay nothing.
	linkFaults []LinkFault

	// trace is the run's flight recorder (nil when disabled). obsSrc caches
	// one recorder source per address; with recording off every entry is nil
	// and each emit site costs a single nil-receiver branch.
	trace  *obs.Trace
	obsSrc []*obs.Source
}

// outMsg is one cross-shard message parked in its sender shard's outbox
// until the next window barrier.
type outMsg struct {
	dst Addr
	p   pending
}

// ScheduleFaults registers the schedule: loss windows become active link
// rules and node faults become Kill (and, when RestartAfter is set, Revive)
// events on the engine's virtual clock. It may be called before or during a
// run; instants already in the past execute immediately.
func (n *Network) ScheduleFaults(s FaultSchedule) {
	n.linkFaults = append(n.linkFaults, s.Links...)
	for _, f := range s.Nodes {
		addr := f.Addr
		n.check(addr)
		// Kills, crashes and restarts mutate cross-node state (liveness is
		// read by every sender, a restart rebuilds a whole node), so they run
		// in the global band: after all node work at their instant, with
		// every shard idle.
		if f.Crash {
			n.engine.AtGlobal(f.At, func() { n.Crash(addr) })
			if f.RestartAfter > 0 {
				n.engine.AtGlobal(f.At+f.RestartAfter, func() { n.Restart(addr) })
			}
			continue
		}
		n.engine.AtGlobal(f.At, func() { n.Kill(addr) })
		if f.RestartAfter > 0 {
			n.engine.AtGlobal(f.At+f.RestartAfter, func() { n.Revive(addr) })
		}
	}
}

// dropProbability folds the base drop rate with every active link fault for
// a src→dst send right now, treating the loss sources as independent. "Now"
// is the sender's clock: under sharding that is the sender shard's clock,
// which during a window is exactly the sending event's timestamp.
func (n *Network) dropProbability(src, dst Addr) float64 {
	keep := 1 - n.dropRate
	now := n.engineFor(src).Now()
	for _, f := range n.linkFaults {
		if f.matches(src, dst, now) {
			keep *= 1 - f.Rate
		}
	}
	return 1 - keep
}

// OnLivenessChange registers fn to be called whenever a node transitions
// between alive and dead (via Attach, Kill or Revive). No-op transitions
// (killing a dead node, attaching over a live one) are not reported.
func (n *Network) OnLivenessChange(fn func(addr Addr, alive bool)) {
	n.onLiveness = append(n.onLiveness, fn)
}

func (n *Network) notifyLiveness(addr Addr, was, now bool) {
	if was == now {
		return
	}
	for _, fn := range n.onLiveness {
		fn(addr, now)
	}
}

type slot struct {
	handler Handler
	alive   bool
}

// pending is one undelivered message parked in a destination's inbox. key is
// the message's delivery key — (source, send index) packed into the band-0
// key layout — which orders the batch at flush time identically in serial and
// sharded runs.
type pending struct {
	at   time.Duration
	key  uint64
	from Addr
	size int
	msg  Message
}

// inbox is a growable circular buffer of a node's in-flight messages in
// send order. In-flight counts per node are small (a handful of overlay
// hops and maintenance probes), so membership scans are cheap.
type inbox struct {
	buf  []pending // len(buf) is a power of two
	head int
	n    int
}

func (b *inbox) slotAt(i int) *pending { return &b.buf[(b.head+i)&(len(b.buf)-1)] }

func (b *inbox) push(p pending) {
	if b.n == len(b.buf) {
		grown := make([]pending, max(8, 2*len(b.buf)))
		for i := 0; i < b.n; i++ {
			grown[i] = *b.slotAt(i)
		}
		b.buf = grown
		b.head = 0
	}
	*b.slotAt(b.n) = p
	b.n++
}

// hasDue reports whether any parked message is due exactly at t (in which
// case a flush event for t is already scheduled).
func (b *inbox) hasDue(t time.Duration) bool {
	for i := 0; i < b.n; i++ {
		if b.slotAt(i).at == t {
			return true
		}
	}
	return false
}

// extract appends every message due at t to dst in send order, compacts the
// remainder in place (preserving their order), and returns dst.
func (b *inbox) extract(t time.Duration, dst []pending) []pending {
	w := 0
	for i := 0; i < b.n; i++ {
		p := b.slotAt(i)
		if p.at == t {
			dst = append(dst, *p)
		} else {
			if w != i {
				*b.slotAt(w) = *p
			}
			w++
		}
	}
	for i := w; i < b.n; i++ {
		*b.slotAt(i) = pending{} // release message references
	}
	b.n = w
	return dst
}

// Option configures a Network.
type Option func(*Network)

// WithDropRate makes the network drop each message independently with
// probability p (0 <= p < 1), drawn from the engine's random source.
func WithDropRate(p float64) Option {
	return func(n *Network) { n.dropRate = p }
}

// WithPerMessageDelivery schedules one engine event per message instead of
// batching by (destination, timestamp). It is the reference delivery scheme
// the batching equivalence tests compare against.
func WithPerMessageDelivery() Option {
	return func(n *Network) { n.perMessage = true }
}

// WithTrace attaches a flight recorder: message drops and fault injections
// are recorded, per-address recorder sources become available through
// TraceSource for the protocol layers above, and the network's traffic
// totals register as gauges in the trace's counter registry.
func WithTrace(tr *obs.Trace) Option {
	return func(n *Network) { n.trace = tr }
}

// New creates a network of size nodes whose pairwise latency is given by
// latency. Nodes are created dead; Attach brings them online.
func New(engine *sim.Engine, size int, latency LatencyFunc, opts ...Option) *Network {
	if size < 0 {
		panic("simnet: negative size")
	}
	n := &Network{
		engine:   engine,
		latency:  latency,
		nodes:    make([]slot, size),
		counters: make([]Counters, size),
		inboxes:  make([]inbox, size),
		flush:    make([]func(), size),
		sendSeq:  make([]uint64, size),
		dropSalt: splitmix64(uint64(engine.Seed())),
	}
	for _, o := range opts {
		o(n)
	}
	n.obsSrc = make([]*obs.Source, size)
	if n.trace != nil {
		for a := range n.obsSrc {
			n.obsSrc[a] = n.trace.Source(int32(a))
		}
		reg := n.trace.Registry()
		reg.RegisterGauge("net/msgs_sent", func() int64 { return n.sumCounters(func(c *Counters) int { return c.MsgsSent }) })
		reg.RegisterGauge("net/msgs_received", func() int64 { return n.sumCounters(func(c *Counters) int { return c.MsgsReceived }) })
		reg.RegisterGauge("net/bytes_sent", func() int64 { return n.sumCounters(func(c *Counters) int { return c.BytesSent }) })
		reg.RegisterGauge("net/bytes_received", func() int64 { return n.sumCounters(func(c *Counters) int { return c.BytesReceived }) })
	}
	k := engine.ShardCount()
	if engine.Sharded() {
		if n.perMessage {
			panic("simnet: per-message delivery is incompatible with a sharded engine (batching gives cross-shard merges their one-event-per-(destination, instant) shape)")
		}
		n.engines = make([]*sim.Engine, size)
		n.shardID = make([]int32, size)
		for a := 0; a < size; a++ {
			sh := int32(splitmix64(uint64(a)) % uint64(k))
			n.shardID[a] = sh
			n.engines[a] = engine.Shard(int(sh))
		}
		n.outboxes = make([][]outMsg, k)
		engine.OnBarrier(n.mergeOutboxes)
	}
	n.scratches = make([][]pending, k)
	for d := range n.flush {
		d := Addr(d)
		n.flush[d] = func() { n.flushInbox(d) }
	}
	return n
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash
// used for the shard assignment and the per-message drop draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// deliveryKey packs (source, send index) into the band-0 key layout: the
// source address in the high bits, its send counter below. Delivery order by
// key is therefore send order per source, with concurrent sources interleaved
// the same way regardless of engine mode or shard layout.
func deliveryKey(src Addr, idx uint64) uint64 {
	return uint64(src)<<38 | idx
}

// dropDraw returns the pseudo-uniform draw in [0,1) deciding the fate of the
// idx-th send of src. Hashing (salt, source, send index) instead of consuming
// the engine rng keeps the draw — and hence the surviving message set —
// independent of event execution order across engine modes.
func (n *Network) dropDraw(src Addr, idx uint64) float64 {
	h := splitmix64(n.dropSalt ^ deliveryKey(src, idx))
	return float64(h>>11) / (1 << 53)
}

// engineFor returns the engine that owns addr: its shard engine under a
// sharded root, the single engine otherwise.
func (n *Network) engineFor(a Addr) *sim.Engine {
	if n.engines == nil {
		return n.engine
	}
	return n.engines[a]
}

// EngineFor returns the engine that owns addr. Node-local scheduling (timers,
// probes, maintenance) must go through the owning engine so it runs on the
// node's shard; EngineFor is how nodes obtain it.
func (n *Network) EngineFor(a Addr) *sim.Engine {
	n.check(a)
	return n.engineFor(a)
}

// mergeOutboxes moves every parked cross-shard message into its destination's
// inbox, scheduling the batch flush exactly as a same-shard send would. It
// runs at window barriers on the root goroutine with all shards idle. Merge
// order across outboxes is immaterial: the set of (destination, instant)
// flush events does not depend on it, and each batch is sorted by delivery
// key at flush time.
func (n *Network) mergeOutboxes() {
	for sh := range n.outboxes {
		out := n.outboxes[sh]
		for i := range out {
			m := &out[i]
			box := &n.inboxes[m.dst]
			if !box.hasDue(m.p.at) {
				n.engineFor(m.dst).AtDelivery(m.p.at, uint64(m.dst), n.flush[m.dst])
			}
			box.push(m.p)
			out[i] = outMsg{}
		}
		n.outboxes[sh] = out[:0]
	}
}

func (n *Network) sumCounters(field func(*Counters) int) int64 {
	var sum int64
	for i := range n.counters {
		sum += int64(field(&n.counters[i]))
	}
	return sum
}

// Engine returns the event engine driving the network.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Trace returns the attached flight recorder (nil when recording is off).
func (n *Network) Trace() *obs.Trace { return n.trace }

// TraceSource returns addr's recorder source — the stream every protocol
// layer on that node emits to. It is nil (a no-op recorder) when tracing is
// disabled, so callers cache and use it unconditionally.
func (n *Network) TraceSource(addr Addr) *obs.Source {
	n.check(addr)
	return n.obsSrc[addr]
}

// Size returns the number of addressable endpoints.
func (n *Network) Size() int { return len(n.nodes) }

// Attach registers handler at addr and marks the node alive. Attaching over
// a live node replaces its handler.
func (n *Network) Attach(addr Addr, handler Handler) {
	n.check(addr)
	if handler == nil {
		panic("simnet: Attach with nil handler")
	}
	was := n.nodes[addr].alive
	n.nodes[addr] = slot{handler: handler, alive: true}
	n.notifyLiveness(addr, was, true)
}

// Kill marks the node dead: all traffic to or from it is dropped until
// Revive. Killing a dead node is a no-op.
func (n *Network) Kill(addr Addr) {
	n.check(addr)
	was := n.nodes[addr].alive
	n.nodes[addr].alive = false
	if was {
		// Fault injections run at exclusive global instants (or from idle
		// test code), so writing the victim's own source is race-free.
		n.obsSrc[addr].Instant(n.engine.Now(), obs.KindKill, obs.NoRef, 0, 0)
	}
	n.notifyLiveness(addr, was, false)
}

// SetRestarter registers the rebuild hook Restart invokes for crashed
// nodes. There is one restarter per network: crash recovery is a property
// of the stack above, not of an individual fault site.
func (n *Network) SetRestarter(fn func(addr Addr)) { n.restarter = fn }

// Crash kills the node AND discards its handler: every piece of in-memory
// state the handler closed over — leaf sets, lease tables, placement maps —
// is unreachable from the network's point of view. The node can only come
// back through Restart (or a fresh Attach), never through Revive. Crashing
// a dead node still discards the handler; crashing a crashed node is a
// no-op.
func (n *Network) Crash(addr Addr) {
	n.check(addr)
	was := n.nodes[addr].alive
	n.nodes[addr] = slot{}
	if was {
		// Fault injections run at exclusive global instants (or from idle
		// test code), so writing the victim's own source is race-free.
		n.obsSrc[addr].Instant(n.engine.Now(), obs.KindCrash, obs.NoRef, 0, 0)
	}
	n.notifyLiveness(addr, was, false)
}

// Restart reboots a crashed (or killed) node through the registered
// restarter: the restarter rebuilds the node's stack from scratch — plus
// whatever its durable store held — and attaches the new handler.
// Restarting a live node is a no-op; restarting without a restarter, or
// with a restarter that fails to attach a live handler, panics.
func (n *Network) Restart(addr Addr) {
	n.check(addr)
	if n.nodes[addr].alive {
		return
	}
	if n.restarter == nil {
		panic(fmt.Sprintf("simnet: Restart(%d) without a restarter (SetRestarter)", addr))
	}
	n.obsSrc[addr].Instant(n.engine.Now(), obs.KindRestart, obs.NoRef, 0, 0)
	n.restarter(addr)
	if n.nodes[addr].handler == nil || !n.nodes[addr].alive {
		panic(fmt.Sprintf("simnet: restarter left node %d without a live handler", addr))
	}
}

// Revive brings a previously killed node back online with its old handler.
// It panics if the node was never attached — or crashed, in which case the
// old handler is deliberately gone and recovery must go through Restart.
func (n *Network) Revive(addr Addr) {
	n.check(addr)
	if n.nodes[addr].handler == nil {
		panic(fmt.Sprintf("simnet: Revive(%d) with no handler (never attached, or crashed — use Restart)", addr))
	}
	was := n.nodes[addr].alive
	n.nodes[addr].alive = true
	if !was {
		n.obsSrc[addr].Instant(n.engine.Now(), obs.KindRevive, obs.NoRef, 0, 0)
	}
	n.notifyLiveness(addr, was, true)
}

// Alive reports whether the node is attached and not killed.
func (n *Network) Alive(addr Addr) bool {
	return addr >= 0 && int(addr) < len(n.nodes) && n.nodes[addr].alive
}

// Send delivers msg from src to dst after the topology latency. Sends from
// or to dead nodes are silently dropped, as are a dropRate fraction of all
// messages. Send is charged to the sender's counters even if the message is
// later dropped (the bytes left the NIC).
func (n *Network) Send(src, dst Addr, msg Message) {
	n.check(src)
	n.check(dst)
	size := wireSize(msg)
	if n.nodes[src].alive {
		n.counters[src].MsgsSent++
		n.counters[src].BytesSent += size
	} else {
		return
	}
	idx := n.sendSeq[src]
	n.sendSeq[src]++
	drop := n.dropRate
	if len(n.linkFaults) > 0 {
		drop = n.dropProbability(src, dst)
	}
	if drop > 0 && n.dropDraw(src, idx) < drop {
		// Recorded on the sender: the drop decision is made here, with the
		// sender's clock, identically in every engine mode.
		n.obsSrc[src].Instant(n.engineFor(src).Now(), obs.KindDrop, obs.NoRef, int64(dst), int64(size))
		return
	}
	delay := n.latency(src, dst)
	key := deliveryKey(src, idx)
	if n.perMessage {
		n.engine.AtDelivery(n.engine.Now()+delay, key, func() {
			s := n.nodes[dst]
			if !s.alive {
				return
			}
			n.counters[dst].MsgsReceived++
			n.counters[dst].BytesReceived += size
			s.handler.HandleMessage(src, msg)
		})
		return
	}
	at := n.engineFor(src).Now() + delay
	if n.engines != nil && n.shardID[src] != n.shardID[dst] {
		// Cross-shard: park in the sender shard's outbox. The latency is at
		// least the engine's lookahead, so the message lands beyond every
		// shard's window horizon and the barrier merge schedules it in time.
		// The sender's own window is capped so it does not outrun the
		// consequences (a reply chain can reach back from at+lookahead).
		sh := n.shardID[src]
		n.outboxes[sh] = append(n.outboxes[sh], outMsg{dst: dst,
			p: pending{at: at, key: key, from: src, size: size, msg: msg}})
		n.engines[src].NoteCrossShardSend(at)
		return
	}
	box := &n.inboxes[dst]
	if !box.hasDue(at) {
		// First message bound for dst at this instant: schedule its flush.
		// Later same-(dst, at) sends just park in the inbox for free.
		n.engineFor(dst).AtDelivery(at, uint64(dst), n.flush[dst])
	}
	box.push(pending{at: at, key: key, from: src, size: size, msg: msg})
}

// flushInbox delivers every message due for dst at the current virtual time,
// in delivery-key order — per-source send order, sources interleaved by
// (source, send index), identical in serial and sharded runs and equal to the
// order the per-message scheme executes. Liveness is re-checked before each
// message, so a handler that kills dst mid-batch stops the remainder of the
// batch — just as it would stop the remaining per-message events at the same
// timestamp.
func (n *Network) flushInbox(dst Addr) {
	sh := 0
	if n.shardID != nil {
		sh = int(n.shardID[dst])
	}
	batch := n.inboxes[dst].extract(n.engineFor(dst).Now(), n.scratches[sh][:0])
	if len(batch) > 1 {
		slices.SortFunc(batch, func(a, b pending) int {
			if a.key < b.key {
				return -1
			}
			return 1
		})
	}
	for i := range batch {
		p := &batch[i]
		s := n.nodes[dst]
		if s.alive {
			n.counters[dst].MsgsReceived++
			n.counters[dst].BytesReceived += p.size
			s.handler.HandleMessage(p.from, p.msg)
		}
		*p = pending{} // release message references
	}
	n.scratches[sh] = batch[:0]
}

func wireSize(msg Message) int {
	if ws, ok := msg.(WireSizer); ok {
		return ws.WireSize()
	}
	return DefaultWireSize
}

// CountersOf returns a copy of the traffic counters for addr.
func (n *Network) CountersOf(addr Addr) Counters {
	n.check(addr)
	return n.counters[addr]
}

// AllCounters returns a copy of every node's counters, indexed by address.
func (n *Network) AllCounters() []Counters {
	out := make([]Counters, len(n.counters))
	copy(out, n.counters)
	return out
}

// ResetCounters zeroes all traffic counters; the overhead experiments call
// this at round boundaries to measure per-round cost.
func (n *Network) ResetCounters() {
	for i := range n.counters {
		n.counters[i] = Counters{}
	}
}

func (n *Network) check(addr Addr) {
	if addr < 0 || int(addr) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: address %d out of range [0,%d)", addr, len(n.nodes)))
	}
}
