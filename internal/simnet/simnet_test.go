package simnet

import (
	"testing"
	"time"

	"vbundle/internal/sim"
)

func flatLatency(d time.Duration) LatencyFunc {
	return func(a, b Addr) time.Duration { return d }
}

type recorder struct {
	from []Addr
	msgs []Message
	at   []time.Duration
	eng  *sim.Engine
}

func (r *recorder) HandleMessage(from Addr, msg Message) {
	r.from = append(r.from, from)
	r.msgs = append(r.msgs, msg)
	r.at = append(r.at, r.eng.Now())
}

func TestDeliveryWithLatency(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 2, flatLatency(5*time.Millisecond))
	rx := &recorder{eng: e}
	n.Attach(0, HandlerFunc(func(Addr, Message) {}))
	n.Attach(1, rx)
	n.Send(0, 1, "hello")
	e.Run()
	if len(rx.msgs) != 1 || rx.msgs[0] != "hello" || rx.from[0] != 0 {
		t.Fatalf("delivery wrong: %+v", rx)
	}
	if rx.at[0] != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", rx.at[0])
	}
}

func TestFIFOBetweenPair(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 2, flatLatency(time.Millisecond))
	rx := &recorder{eng: e}
	n.Attach(0, HandlerFunc(func(Addr, Message) {}))
	n.Attach(1, rx)
	for i := 0; i < 10; i++ {
		n.Send(0, 1, i)
	}
	e.Run()
	for i, m := range rx.msgs {
		if m.(int) != i {
			t.Fatalf("out of order delivery: %v", rx.msgs)
		}
	}
}

func TestDeadNodesDropTraffic(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 3, flatLatency(time.Millisecond))
	rx := &recorder{eng: e}
	n.Attach(0, HandlerFunc(func(Addr, Message) {}))
	n.Attach(1, rx)
	// Node 2 never attached: send from it is dropped.
	n.Send(2, 1, "ghost")
	// Kill receiver: message in flight is dropped at delivery time.
	n.Send(0, 1, "casualty")
	n.Kill(1)
	e.Run()
	if len(rx.msgs) != 0 {
		t.Fatalf("dead node received %v", rx.msgs)
	}
	// Revive and verify delivery resumes.
	n.Revive(1)
	n.Send(0, 1, "back")
	e.Run()
	if len(rx.msgs) != 1 || rx.msgs[0] != "back" {
		t.Fatalf("revive delivery: %v", rx.msgs)
	}
}

func TestAliveReflectsState(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 2, flatLatency(0))
	if n.Alive(0) {
		t.Fatal("unattached node reported alive")
	}
	n.Attach(0, HandlerFunc(func(Addr, Message) {}))
	if !n.Alive(0) {
		t.Fatal("attached node reported dead")
	}
	n.Kill(0)
	if n.Alive(0) {
		t.Fatal("killed node reported alive")
	}
	if n.Alive(Nowhere) {
		t.Fatal("Nowhere reported alive")
	}
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestCounters(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 2, flatLatency(time.Millisecond))
	n.Attach(0, HandlerFunc(func(Addr, Message) {}))
	n.Attach(1, HandlerFunc(func(Addr, Message) {}))
	n.Send(0, 1, "x")          // default size
	n.Send(0, 1, sized{n: 10}) // explicit size
	e.Run()
	c0, c1 := n.CountersOf(0), n.CountersOf(1)
	if c0.MsgsSent != 2 || c0.BytesSent != DefaultWireSize+10 {
		t.Fatalf("sender counters: %+v", c0)
	}
	if c1.MsgsReceived != 2 || c1.BytesReceived != DefaultWireSize+10 {
		t.Fatalf("receiver counters: %+v", c1)
	}
	all := n.AllCounters()
	if all[0] != c0 || all[1] != c1 {
		t.Fatalf("AllCounters mismatch")
	}
	n.ResetCounters()
	if n.CountersOf(0) != (Counters{}) {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestSendFromDeadNotCounted(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 2, flatLatency(0))
	n.Attach(1, HandlerFunc(func(Addr, Message) {}))
	n.Send(0, 1, "x") // node 0 never attached
	e.Run()
	if c := n.CountersOf(0); c.MsgsSent != 0 {
		t.Fatalf("dead sender counted: %+v", c)
	}
}

func TestDropRate(t *testing.T) {
	e := sim.NewEngine(7)
	n := New(e, 2, flatLatency(0), WithDropRate(0.5))
	var received int
	n.Attach(0, HandlerFunc(func(Addr, Message) {}))
	n.Attach(1, HandlerFunc(func(Addr, Message) { received++ }))
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(0, 1, i)
	}
	e.Run()
	if received < total/3 || received > 2*total/3 {
		t.Fatalf("drop rate 0.5 delivered %d of %d", received, total)
	}
	// Sender is still charged for all messages.
	if c := n.CountersOf(0); c.MsgsSent != total {
		t.Fatalf("sender counted %d, want %d", c.MsgsSent, total)
	}
}

func TestTopologyDrivenLatencyOrdering(t *testing.T) {
	// A far message sent first can arrive after a near message sent later.
	e := sim.NewEngine(1)
	lat := func(a, b Addr) time.Duration {
		if a == 0 {
			return 10 * time.Millisecond
		}
		return time.Millisecond
	}
	n := New(e, 3, lat)
	rx := &recorder{eng: e}
	n.Attach(0, HandlerFunc(func(Addr, Message) {}))
	n.Attach(1, HandlerFunc(func(Addr, Message) {}))
	n.Attach(2, rx)
	n.Send(0, 2, "far")
	n.Send(1, 2, "near")
	e.Run()
	if rx.msgs[0] != "near" || rx.msgs[1] != "far" {
		t.Fatalf("latency ordering: %v", rx.msgs)
	}
}

func TestPanicsOnBadAddress(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 1, flatLatency(0))
	for _, fn := range []func(){
		func() { n.Attach(5, HandlerFunc(func(Addr, Message) {})) },
		func() { n.Attach(0, nil) },
		func() { n.Send(0, 9, "x") },
		func() { n.Revive(0) }, // never attached
		func() { n.CountersOf(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
