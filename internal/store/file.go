package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// File format, one file per (node, section):
//
//	offset 0: magic "VBST" (4 bytes)
//	offset 4: format version (1 byte)
//	offset 5: payload length (uint32 little-endian)
//	offset 9: CRC-32 (IEEE) of the payload (uint32 little-endian)
//	offset 13: JSON payload
//
// Writes go to a temp file in the same directory followed by rename, so a
// crash mid-write leaves either the old section or the new one — never a
// blend. The checksum catches the remaining failure mode (a torn or
// truncated file from a crash between rename and sync, or external
// corruption): Load refuses such a section with ErrCorrupt rather than
// rebooting a node from garbage.

const (
	fileMagic   = "VBST"
	fileVersion = 1
	headerLen   = 13
)

// ErrCorrupt marks a section file whose header or checksum does not
// validate. Callers should treat the node as having no durable state for
// that section (and surface the error) rather than trusting partial state.
var ErrCorrupt = errors.New("store: corrupt section file")

type section string

const (
	secPlacements section = "placements"
	secLeases     section = "leases"
	secPeers      section = "peers"
)

// FileStore persists each node section as a checksummed file under a root
// directory.
type FileStore struct {
	mu   sync.Mutex
	root string
}

// NewFile opens (creating if needed) a file-backed store rooted at dir.
func NewFile(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{root: dir}, nil
}

func (f *FileStore) path(node int, sec section) string {
	return filepath.Join(f.root, fmt.Sprintf("n%06d-%s", node, sec))
}

func (f *FileStore) writeSection(node int, sec section, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, fileMagic)
	buf[4] = fileVersion
	binary.LittleEndian.PutUint32(buf[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[9:], crc32.ChecksumIEEE(payload))
	copy(buf[headerLen:], payload)

	f.mu.Lock()
	defer f.mu.Unlock()
	tmp, err := os.CreateTemp(f.root, string(sec)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), f.path(node, sec))
}

func (f *FileStore) readSection(node int, sec section, v any) (bool, error) {
	f.mu.Lock()
	data, err := os.ReadFile(f.path(node, sec))
	f.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if len(data) < headerLen || string(data[:4]) != fileMagic {
		return false, fmt.Errorf("%w: bad header (node %d %s)", ErrCorrupt, node, sec)
	}
	if data[4] != fileVersion {
		return false, fmt.Errorf("%w: unsupported version %d (node %d %s)", ErrCorrupt, data[4], node, sec)
	}
	n := binary.LittleEndian.Uint32(data[5:])
	want := binary.LittleEndian.Uint32(data[9:])
	if int(n) != len(data)-headerLen {
		return false, fmt.Errorf("%w: truncated payload (node %d %s)", ErrCorrupt, node, sec)
	}
	payload := data[headerLen:]
	if crc32.ChecksumIEEE(payload) != want {
		return false, fmt.Errorf("%w: checksum mismatch (node %d %s)", ErrCorrupt, node, sec)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return false, fmt.Errorf("%w: %v (node %d %s)", ErrCorrupt, err, node, sec)
	}
	return true, nil
}

// SavePlacements replaces the node's placement section.
func (f *FileStore) SavePlacements(node int, recs []PlacementRecord) error {
	return f.writeSection(node, secPlacements, recs)
}

// SaveLeases replaces the node's lease section.
func (f *FileStore) SaveLeases(node int, recs []LeaseRecord) error {
	return f.writeSection(node, secLeases, recs)
}

// SavePeers replaces the node's peer checkpoint.
func (f *FileStore) SavePeers(node int, recs []PeerRecord) error {
	return f.writeSection(node, secPeers, recs)
}

// Load reads every section the node has persisted. A node with no files at
// all returns ok=false; any unreadable section fails the whole load.
func (f *FileStore) Load(node int) (NodeState, bool, error) {
	st := NodeState{Server: node}
	any := false
	var recs []PlacementRecord
	ok, err := f.readSection(node, secPlacements, &recs)
	if err != nil {
		return NodeState{}, false, err
	}
	if ok {
		st.Placements, any = recs, true
	}
	var leases []LeaseRecord
	ok, err = f.readSection(node, secLeases, &leases)
	if err != nil {
		return NodeState{}, false, err
	}
	if ok {
		st.Leases, any = leases, true
	}
	var peers []PeerRecord
	ok, err = f.readSection(node, secPeers, &peers)
	if err != nil {
		return NodeState{}, false, err
	}
	if ok {
		st.Peers, any = peers, true
	}
	return st, any, nil
}

// Delete removes every section file for the node.
func (f *FileStore) Delete(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, sec := range []section{secPlacements, secLeases, secPeers} {
		if err := os.Remove(f.path(node, sec)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Close is a no-op: every write is already flushed and renamed.
func (f *FileStore) Close() error { return nil }
