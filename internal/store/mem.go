package store

import "sync"

// MemStore is the deterministic in-memory Store the simulator uses. It is
// safe for concurrent use by the parallel experiment harness (each run owns
// its own MemStore, but the race detector still wants the discipline) and
// deep-copies every section on both save and load.
type MemStore struct {
	mu    sync.Mutex
	nodes map[int]*NodeState
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{nodes: make(map[int]*NodeState)}
}

func (m *MemStore) state(node int) *NodeState {
	st, ok := m.nodes[node]
	if !ok {
		st = &NodeState{Server: node}
		m.nodes[node] = st
	}
	return st
}

// SavePlacements replaces the node's placement section.
func (m *MemStore) SavePlacements(node int, recs []PlacementRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state(node).Placements = append([]PlacementRecord(nil), recs...)
	return nil
}

// SaveLeases replaces the node's lease section.
func (m *MemStore) SaveLeases(node int, recs []LeaseRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state(node).Leases = append([]LeaseRecord(nil), recs...)
	return nil
}

// SavePeers replaces the node's peer checkpoint.
func (m *MemStore) SavePeers(node int, recs []PeerRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state(node).Peers = append([]PeerRecord(nil), recs...)
	return nil
}

// Load returns a deep copy of the node's state, or ok=false if the node
// has never saved anything.
func (m *MemStore) Load(node int) (NodeState, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.nodes[node]
	if !ok {
		return NodeState{}, false, nil
	}
	out := NodeState{
		Server:     st.Server,
		Placements: append([]PlacementRecord(nil), st.Placements...),
		Leases:     append([]LeaseRecord(nil), st.Leases...),
		Peers:      append([]PeerRecord(nil), st.Peers...),
	}
	return out, true, nil
}

// Delete drops the node's state entirely.
func (m *MemStore) Delete(node int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.nodes, node)
	return nil
}

// Close is a no-op for the in-memory store.
func (m *MemStore) Close() error { return nil }
