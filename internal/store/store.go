// Package store is the per-node durable state layer: what a v-Bundle node
// is allowed to remember across a crash. Everything else — leaf sets,
// aggregation trees, in-flight anycasts, resolution caches — is soft state
// and must be rebuilt from the live ring during rejoin.
//
// Three sections are persisted per node, each written through at the moment
// the authoritative in-memory structure changes:
//
//   - placements: the VMs the node's server currently hosts (the node's
//     slice of the global placement map);
//   - leases: the receiver-side reservation table, with absolute
//     virtual-time expiries so a restarted node can tell a still-valid
//     lease from one that lapsed while it was down;
//   - peers: a routing-state checkpoint (node IDs and addresses) used to
//     bootstrap the rejoin announce instead of a full cold join.
//
// Two implementations satisfy the same contract tests: MemStore, the
// deterministic in-memory store the simulator uses, and FileStore, a
// file-backed store with checksummed atomic section writes that rejects
// torn or truncated state at load instead of resurrecting garbage.
package store

import "time"

// PlacementRecord is one hosted VM as the node's server knew it.
type PlacementRecord struct {
	// VM is the cluster-wide VM identifier.
	VM int64
	// Customer is the owning customer (the placement key is hash(customer),
	// so the customer string is enough to re-derive routing).
	Customer string
	// Server is the hosting server index; always the owning node's server
	// in well-formed state, kept explicit so a loader can cross-check.
	Server int
}

// LeaseRecord is one receiver-side reservation with its absolute
// virtual-time expiry.
type LeaseRecord struct {
	// VM is the reserved VM's identifier.
	VM int64
	// DemandCPU, DemandMemMB and DemandBW are the reserved demand bundle.
	DemandCPU   float64
	DemandMemMB float64
	DemandBW    float64
	// Expires is the absolute virtual time the lease lapses.
	Expires time.Duration
}

// PeerRecord is one known peer from the node's routing state. IDs are kept
// as raw words so the store does not depend on the pastry package.
type PeerRecord struct {
	IdHi, IdLo uint64
	Addr       int
}

// NodeState is everything a node may recover after a crash.
type NodeState struct {
	// Server is the node's server index (node addresses and server indices
	// coincide in the simulator).
	Server     int
	Placements []PlacementRecord
	Leases     []LeaseRecord
	Peers      []PeerRecord
}

// Store is the per-node durability contract. Save* calls replace the named
// section wholesale — the caller always writes its full authoritative
// table, so replaying a save is idempotent by construction. Load returns
// the latest state for a node and ok=false when the node has never saved
// anything (a genuinely blank restart). Implementations must deep-copy on
// both save and load: a caller mutating its slice after a save, or the
// returned state after a load, must not alias stored data.
type Store interface {
	SavePlacements(node int, recs []PlacementRecord) error
	SaveLeases(node int, recs []LeaseRecord) error
	SavePeers(node int, recs []PeerRecord) error
	Load(node int) (NodeState, bool, error)
	Delete(node int) error
	Close() error
}
