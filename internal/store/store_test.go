package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// The contract suite: every Store implementation must pass the same
// round-trip, replacement, idempotent-replay and deletion semantics. The
// file store additionally rejects torn and partial state (tested below).
func runContract(t *testing.T, open func(t *testing.T) Store) {
	t.Helper()

	placements := []PlacementRecord{
		{VM: 3, Customer: "acme", Server: 7},
		{VM: 9, Customer: "blue", Server: 7},
	}
	leases := []LeaseRecord{
		{VM: 11, DemandCPU: 1, DemandMemMB: 512, DemandBW: 80, Expires: 42 * time.Minute},
		{VM: 12, DemandBW: 10, Expires: 50 * time.Minute},
	}
	peers := []PeerRecord{{IdHi: 1, IdLo: 2, Addr: 3}, {IdHi: 4, IdLo: 5, Addr: 6}}

	t.Run("LoadBeforeSave", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		_, ok, err := s.Load(7)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if ok {
			t.Fatalf("Load before any save reported state")
		}
	})

	t.Run("RoundTrip", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.SavePlacements(7, placements); err != nil {
			t.Fatalf("SavePlacements: %v", err)
		}
		if err := s.SaveLeases(7, leases); err != nil {
			t.Fatalf("SaveLeases: %v", err)
		}
		if err := s.SavePeers(7, peers); err != nil {
			t.Fatalf("SavePeers: %v", err)
		}
		st, ok, err := s.Load(7)
		if err != nil || !ok {
			t.Fatalf("Load: ok=%v err=%v", ok, err)
		}
		if !reflect.DeepEqual(st.Placements, placements) {
			t.Fatalf("placements round-trip: got %+v want %+v", st.Placements, placements)
		}
		if !reflect.DeepEqual(st.Leases, leases) {
			t.Fatalf("leases round-trip: got %+v want %+v", st.Leases, leases)
		}
		if !reflect.DeepEqual(st.Peers, peers) {
			t.Fatalf("peers round-trip: got %+v want %+v", st.Peers, peers)
		}
	})

	t.Run("NoAliasing", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		in := append([]LeaseRecord(nil), leases...)
		if err := s.SaveLeases(1, in); err != nil {
			t.Fatalf("SaveLeases: %v", err)
		}
		in[0].VM = 999 // caller mutates after save
		st, _, err := s.Load(1)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if st.Leases[0].VM != leases[0].VM {
			t.Fatalf("store aliased the caller's slice")
		}
		st.Leases[0].VM = 888 // caller mutates the loaded copy
		again, _, _ := s.Load(1)
		if again.Leases[0].VM != leases[0].VM {
			t.Fatalf("store aliased the loaded slice")
		}
	})

	// Releasing a lease is persisted as a save of the shrunken table;
	// replaying the same save (a retried release after an ack loss) must
	// land on the same state, and releasing a lease that is already gone
	// must not resurrect anything.
	t.Run("IdempotentReleaseReplay", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.SaveLeases(2, leases); err != nil {
			t.Fatalf("SaveLeases: %v", err)
		}
		released := leases[1:] // lease for VM 11 released
		for i := 0; i < 3; i++ {
			if err := s.SaveLeases(2, released); err != nil {
				t.Fatalf("SaveLeases replay %d: %v", i, err)
			}
			st, _, err := s.Load(2)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if !reflect.DeepEqual(st.Leases, released) {
				t.Fatalf("replay %d diverged: got %+v want %+v", i, st.Leases, released)
			}
		}
	})

	t.Run("EmptySectionOverwrites", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.SaveLeases(3, leases); err != nil {
			t.Fatalf("SaveLeases: %v", err)
		}
		if err := s.SaveLeases(3, nil); err != nil {
			t.Fatalf("SaveLeases(nil): %v", err)
		}
		st, ok, err := s.Load(3)
		if err != nil || !ok {
			t.Fatalf("Load: ok=%v err=%v", ok, err)
		}
		if len(st.Leases) != 0 {
			t.Fatalf("empty save did not clear section: %+v", st.Leases)
		}
	})

	t.Run("PerNodeIsolation", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.SaveLeases(4, leases); err != nil {
			t.Fatalf("SaveLeases: %v", err)
		}
		if _, ok, _ := s.Load(5); ok {
			t.Fatalf("node 5 sees node 4's state")
		}
	})

	t.Run("Delete", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.SaveLeases(6, leases); err != nil {
			t.Fatalf("SaveLeases: %v", err)
		}
		if err := s.Delete(6); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, ok, _ := s.Load(6); ok {
			t.Fatalf("state survived Delete")
		}
		if err := s.Delete(6); err != nil {
			t.Fatalf("Delete of absent node: %v", err)
		}
	})
}

func TestMemStoreContract(t *testing.T) {
	runContract(t, func(t *testing.T) Store { return NewMem() })
}

func TestFileStoreContract(t *testing.T) {
	runContract(t, func(t *testing.T) Store {
		s, err := NewFile(t.TempDir())
		if err != nil {
			t.Fatalf("NewFile: %v", err)
		}
		return s
	})
}

// sectionFile finds the single on-disk file for (node, section) so the
// corruption tests can vandalise it.
func sectionFile(t *testing.T, dir string, node int, sec string) string {
	t.Helper()
	p := filepath.Join(dir, "n000007-"+sec)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("section file missing: %v", err)
	}
	return p
}

func TestFileStoreRejectsTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	leases := []LeaseRecord{{VM: 11, DemandBW: 80, Expires: time.Minute}}
	if err := s.SaveLeases(7, leases); err != nil {
		t.Fatalf("SaveLeases: %v", err)
	}
	p := sectionFile(t, dir, 7, "leases")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("read section: %v", err)
	}

	// Truncated payload: the header promises more bytes than exist.
	if err := os.WriteFile(p, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, _, err := s.Load(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated section: got err=%v, want ErrCorrupt", err)
	}

	// Flipped payload byte: length fine, checksum wrong.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0xff
	if err := os.WriteFile(p, flipped, 0o644); err != nil {
		t.Fatalf("flip: %v", err)
	}
	if _, _, err := s.Load(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped section: got err=%v, want ErrCorrupt", err)
	}

	// Garbage header.
	if err := os.WriteFile(p, []byte("not a section"), 0o644); err != nil {
		t.Fatalf("garbage: %v", err)
	}
	if _, _, err := s.Load(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage section: got err=%v, want ErrCorrupt", err)
	}

	// Unsupported version byte.
	versioned := append([]byte(nil), data...)
	versioned[4] = 99
	if err := os.WriteFile(p, versioned, 0o644); err != nil {
		t.Fatalf("version: %v", err)
	}
	if _, _, err := s.Load(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future-versioned section: got err=%v, want ErrCorrupt", err)
	}

	// Restoring the original bytes makes the section readable again — the
	// checksum is a property of the bytes, not a session secret.
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("restore: %v", err)
	}
	st, ok, err := s.Load(7)
	if err != nil || !ok {
		t.Fatalf("restored section: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(st.Leases, leases) {
		t.Fatalf("restored section diverged: %+v", st.Leases)
	}
}

// A crash between sections leaves the other sections intact: vandalising
// the lease file must not take down placements.
func TestFileStorePartialStateIsolated(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if err := s.SavePlacements(7, []PlacementRecord{{VM: 1, Customer: "acme", Server: 7}}); err != nil {
		t.Fatalf("SavePlacements: %v", err)
	}
	if err := s.SaveLeases(7, []LeaseRecord{{VM: 2, Expires: time.Minute}}); err != nil {
		t.Fatalf("SaveLeases: %v", err)
	}
	p := sectionFile(t, dir, 7, "leases")
	if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
		t.Fatalf("vandalise: %v", err)
	}
	// The whole load fails loudly — a rejoin must not silently proceed
	// with placements but no leases.
	if _, _, err := s.Load(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial state: got err=%v, want ErrCorrupt", err)
	}
}
