// Package tcshape models the hypervisor-based bandwidth controller of
// v-Bundle (§III.D): Linux traffic control (tc) with HTB-style classes, one
// per VM, each configured with a rate (guaranteed bandwidth, the VM's
// reservation) and a ceil (the maximum it may borrow up to, the VM's
// limit).
//
// Allocate distributes a NIC's capacity across competing VM classes with
// progressive filling:
//
//  1. every class is guaranteed min(rate, demand);
//  2. leftover capacity is shared among still-hungry classes by equal
//     increments (water filling), never exceeding min(ceil, demand);
//  3. the allocator is work-conserving: capacity is left idle only when
//     every class is satisfied or capped.
package tcshape

import "sort"

// Class describes one VM's shaping configuration and current offered load.
type Class struct {
	// Rate is the guaranteed bandwidth (reservation), in Mbps.
	Rate float64
	// Ceil is the borrowing ceiling (limit), in Mbps; Ceil >= Rate.
	Ceil float64
	// Demand is the offered load, in Mbps.
	Demand float64
}

// target is the most a class may receive: its demand capped by its ceiling.
func (c Class) target() float64 {
	if c.Demand < c.Ceil {
		return c.Demand
	}
	return c.Ceil
}

// guaranteed is what admission control promised: rate capped by demand (an
// idle class does not consume its guarantee).
func (c Class) guaranteed() float64 {
	if c.Demand < c.Rate {
		return c.Demand
	}
	return c.Rate
}

// Allocate returns the per-class bandwidth shares for a NIC of the given
// capacity. The result has the same length and order as classes.
//
// Invariants (verified by the test suite):
//
//   - alloc[i] >= min(Rate, Demand) whenever the sum of guarantees fits
//     capacity (admission control ensures it does);
//   - alloc[i] <= min(Ceil, Demand);
//   - sum(alloc) <= capacity;
//   - work conservation: if sum(alloc) < capacity then every class has
//     alloc[i] == min(Ceil, Demand).
//
// If the guarantees alone exceed capacity (an over-committed server that
// admission control would not produce), guarantees are scaled down
// proportionally, mirroring how HTB degrades.
func Allocate(capacity float64, classes []Class) []float64 {
	alloc := make([]float64, len(classes))
	if capacity <= 0 || len(classes) == 0 {
		return alloc
	}

	// Phase 1: guarantees.
	var guaranteedSum float64
	for _, c := range classes {
		guaranteedSum += c.guaranteed()
	}
	if guaranteedSum > capacity {
		scale := capacity / guaranteedSum
		for i, c := range classes {
			alloc[i] = c.guaranteed() * scale
		}
		return alloc
	}
	for i, c := range classes {
		alloc[i] = c.guaranteed()
	}
	remaining := capacity - guaranteedSum

	// Phase 2: water-fill the surplus among hungry classes. Sorting by
	// headroom lets a single pass compute the equal-increment fill level.
	type hungry struct {
		idx      int
		headroom float64 // target - guaranteed
	}
	var hs []hungry
	for i, c := range classes {
		if h := c.target() - alloc[i]; h > 0 {
			hs = append(hs, hungry{idx: i, headroom: h})
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].headroom < hs[j].headroom })

	for k := 0; k < len(hs) && remaining > 0; k++ {
		share := remaining / float64(len(hs)-k)
		give := hs[k].headroom
		if give > share {
			give = share
		}
		alloc[hs[k].idx] += give
		remaining -= give
	}
	return alloc
}

// AllocateWeighted distributes like Allocate but shares the surplus in
// proportion to each class's rate instead of equally — Linux HTB's actual
// behaviour, where a class's quantum derives from its configured rate.
// Classes with zero rate share a minimal weight so they are not starved.
//
// It preserves the same invariants as Allocate (guarantees met, ceil and
// demand respected, capacity respected, work conservation).
func AllocateWeighted(capacity float64, classes []Class) []float64 {
	alloc := make([]float64, len(classes))
	if capacity <= 0 || len(classes) == 0 {
		return alloc
	}
	var guaranteedSum float64
	for _, c := range classes {
		guaranteedSum += c.guaranteed()
	}
	if guaranteedSum > capacity {
		scale := capacity / guaranteedSum
		for i, c := range classes {
			alloc[i] = c.guaranteed() * scale
		}
		return alloc
	}
	for i, c := range classes {
		alloc[i] = c.guaranteed()
	}
	remaining := capacity - guaranteedSum

	// Minimum weight: a tenth of the smallest positive rate (or 1 when no
	// class has a rate), so zero-rate classes still progress.
	minRate := 0.0
	for _, c := range classes {
		if c.Rate > 0 && (minRate == 0 || c.Rate < minRate) {
			minRate = c.Rate
		}
	}
	floor := 1.0
	if minRate > 0 {
		floor = minRate / 10
	}
	weight := func(c Class) float64 {
		if c.Rate > floor {
			return c.Rate
		}
		return floor
	}

	type hungry struct {
		idx      int
		headroom float64
		w        float64
	}
	var hs []hungry
	var wsum float64
	for i, c := range classes {
		if h := c.target() - alloc[i]; h > 0 {
			w := weight(c)
			hs = append(hs, hungry{idx: i, headroom: h, w: w})
			wsum += w
		}
	}
	// Sort by headroom per unit weight: the class that saturates first
	// under proportional filling comes first, enabling a single pass.
	sort.Slice(hs, func(i, j int) bool { return hs[i].headroom/hs[i].w < hs[j].headroom/hs[j].w })

	for _, h := range hs {
		if remaining <= 0 || wsum <= 0 {
			break
		}
		give := remaining * h.w / wsum
		if give > h.headroom {
			give = h.headroom
		}
		alloc[h.idx] += give
		remaining -= give
		wsum -= h.w
	}
	return alloc
}

// Satisfied returns the total allocated bandwidth and the total target
// (demand capped by ceil) for a set of classes under the given capacity —
// the per-server contribution to the paper's Fig. 11 "actual satisfied
// resource" versus "resource demand" curves.
func Satisfied(capacity float64, classes []Class) (allocated, wanted float64) {
	alloc := Allocate(capacity, classes)
	for i, c := range classes {
		allocated += alloc[i]
		wanted += c.target()
	}
	return allocated, wanted
}
