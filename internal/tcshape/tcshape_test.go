package tcshape

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGuaranteesMet(t *testing.T) {
	classes := []Class{
		{Rate: 100, Ceil: 200, Demand: 500},
		{Rate: 100, Ceil: 100, Demand: 50},
		{Rate: 200, Ceil: 400, Demand: 400},
	}
	alloc := Allocate(400, classes)
	for i, c := range classes {
		if g := math.Min(c.Rate, c.Demand); alloc[i] < g-1e-9 {
			t.Errorf("class %d alloc %g below guarantee %g", i, alloc[i], g)
		}
	}
}

func TestIdleClassDoesNotHoard(t *testing.T) {
	// Paper motivation: an idle high-I/O VM should not pin its 200 Mbps
	// while a busy neighbour starves.
	classes := []Class{
		{Rate: 200, Ceil: 200, Demand: 10},  // idle high-I/O VM
		{Rate: 100, Ceil: 400, Demand: 390}, // busy standard VM
	}
	alloc := Allocate(400, classes)
	if !almostEq(alloc[0], 10) {
		t.Errorf("idle class got %g, want 10", alloc[0])
	}
	if !almostEq(alloc[1], 390) {
		t.Errorf("busy class got %g, want 390 (borrowing idle guarantee)", alloc[1])
	}
}

func TestCeilCapsBorrowing(t *testing.T) {
	classes := []Class{
		{Rate: 100, Ceil: 150, Demand: 1000},
		{Rate: 100, Ceil: 1000, Demand: 1000},
	}
	alloc := Allocate(1000, classes)
	if !almostEq(alloc[0], 150) {
		t.Errorf("capped class got %g, want 150", alloc[0])
	}
	if !almostEq(alloc[1], 850) {
		t.Errorf("uncapped class got %g, want 850", alloc[1])
	}
}

func TestEqualSharingOfSurplus(t *testing.T) {
	classes := []Class{
		{Rate: 0, Ceil: 1000, Demand: 1000},
		{Rate: 0, Ceil: 1000, Demand: 1000},
		{Rate: 0, Ceil: 1000, Demand: 1000},
		{Rate: 0, Ceil: 1000, Demand: 1000},
	}
	alloc := Allocate(400, classes)
	for i, a := range alloc {
		if !almostEq(a, 100) {
			t.Errorf("class %d got %g, want 100", i, a)
		}
	}
}

func TestExampleFromPaperFigure1(t *testing.T) {
	// Fig. 1(b): a 400 Mbps host with one standard VM (100) and one
	// high-I/O VM (200). Demands spike to 300 each. Traditional fixed-size
	// allocation caps them at 100+200; v-Bundle's rate/ceil classes let
	// them use the whole NIC.
	classes := []Class{
		{Rate: 100, Ceil: 400, Demand: 300},
		{Rate: 200, Ceil: 400, Demand: 300},
	}
	alloc := Allocate(400, classes)
	if got := alloc[0] + alloc[1]; !almostEq(got, 400) {
		t.Errorf("total allocation %g, want full NIC 400", got)
	}
	if alloc[0] < 100-1e-9 || alloc[1] < 200-1e-9 {
		t.Errorf("guarantees violated: %v", alloc)
	}
}

func TestOvercommittedGuaranteesScale(t *testing.T) {
	classes := []Class{
		{Rate: 300, Ceil: 300, Demand: 300},
		{Rate: 300, Ceil: 300, Demand: 300},
	}
	alloc := Allocate(300, classes)
	if !almostEq(alloc[0], 150) || !almostEq(alloc[1], 150) {
		t.Errorf("overcommit scaling: %v", alloc)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if got := Allocate(100, nil); len(got) != 0 {
		t.Errorf("nil classes: %v", got)
	}
	alloc := Allocate(0, []Class{{Rate: 10, Ceil: 20, Demand: 20}})
	if alloc[0] != 0 {
		t.Errorf("zero capacity: %v", alloc)
	}
	alloc = Allocate(-5, []Class{{Rate: 10, Ceil: 20, Demand: 20}})
	if alloc[0] != 0 {
		t.Errorf("negative capacity: %v", alloc)
	}
	alloc = Allocate(100, []Class{{Rate: 10, Ceil: 20, Demand: 0}})
	if alloc[0] != 0 {
		t.Errorf("zero demand: %v", alloc)
	}
}

// genClasses builds a random admissible class set: guarantees fit capacity.
func genClasses(rng *rand.Rand, capacity float64) []Class {
	n := 1 + rng.Intn(12)
	classes := make([]Class, n)
	budget := capacity
	for i := range classes {
		rate := rng.Float64() * budget / float64(n)
		budget -= rate
		ceil := rate + rng.Float64()*capacity
		classes[i] = Class{Rate: rate, Ceil: ceil, Demand: rng.Float64() * capacity * 1.5}
	}
	return classes
}

func TestAllocateInvariantsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 100 + rng.Float64()*10000
		classes := genClasses(rng, capacity)
		alloc := Allocate(capacity, classes)

		var total float64
		allSatisfied := true
		for i, c := range classes {
			g := math.Min(c.Rate, c.Demand)
			tgt := math.Min(c.Ceil, c.Demand)
			if alloc[i] < g-1e-6 {
				return false // guarantee violated
			}
			if alloc[i] > tgt+1e-6 {
				return false // exceeded ceil or demand
			}
			if alloc[i] < tgt-1e-6 {
				allSatisfied = false
			}
			total += alloc[i]
		}
		if total > capacity+1e-6 {
			return false // capacity violated
		}
		if total < capacity-1e-6 && !allSatisfied {
			return false // not work-conserving
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSatisfied(t *testing.T) {
	classes := []Class{
		{Rate: 100, Ceil: 200, Demand: 300},
		{Rate: 100, Ceil: 300, Demand: 50},
	}
	allocated, wanted := Satisfied(400, classes)
	if !almostEq(wanted, 250) { // min(200,300) + min(300,50)
		t.Errorf("wanted = %g, want 250", wanted)
	}
	if !almostEq(allocated, 250) { // fits entirely
		t.Errorf("allocated = %g, want 250", allocated)
	}
	allocated, wanted = Satisfied(100, classes)
	if allocated > 100+1e-9 {
		t.Errorf("allocated %g exceeds capacity", allocated)
	}
	if !almostEq(wanted, 250) {
		t.Errorf("wanted changed with capacity: %g", wanted)
	}
}

func TestWeightedSurplusFollowsRates(t *testing.T) {
	// Two always-hungry classes with rates 100 and 300: HTB hands the
	// surplus out 1:3.
	classes := []Class{
		{Rate: 100, Ceil: 1000, Demand: 1000},
		{Rate: 300, Ceil: 1000, Demand: 1000},
	}
	alloc := AllocateWeighted(800, classes)
	// Guarantees 100+300, surplus 400 split 100/300.
	if !almostEq(alloc[0], 200) || !almostEq(alloc[1], 600) {
		t.Fatalf("weighted split: %v", alloc)
	}
	// Equal-share mode differs: surplus 400 split 200/200.
	eq := Allocate(800, classes)
	if !almostEq(eq[0], 300) || !almostEq(eq[1], 500) {
		t.Fatalf("equal split: %v", eq)
	}
}

func TestWeightedZeroRateNotStarved(t *testing.T) {
	classes := []Class{
		{Rate: 0, Ceil: 1000, Demand: 1000},
		{Rate: 500, Ceil: 1000, Demand: 1000},
	}
	alloc := AllocateWeighted(600, classes)
	if alloc[0] <= 0 {
		t.Fatalf("zero-rate class starved: %v", alloc)
	}
	if alloc[1] <= alloc[0] {
		t.Fatalf("rate ordering not respected: %v", alloc)
	}
}

func TestWeightedSaturationRedistributes(t *testing.T) {
	// The heavy class caps at its ceiling; the leftovers go to the other.
	classes := []Class{
		{Rate: 300, Ceil: 350, Demand: 1000},
		{Rate: 100, Ceil: 1000, Demand: 1000},
	}
	alloc := AllocateWeighted(1000, classes)
	if !almostEq(alloc[0], 350) {
		t.Fatalf("capped class: %v", alloc)
	}
	if !almostEq(alloc[1], 650) {
		t.Fatalf("redistribution: %v", alloc)
	}
}

func TestWeightedInvariantsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 100 + rng.Float64()*10000
		classes := genClasses(rng, capacity)
		alloc := AllocateWeighted(capacity, classes)
		var total float64
		allSatisfied := true
		for i, c := range classes {
			g := math.Min(c.Rate, c.Demand)
			tgt := math.Min(c.Ceil, c.Demand)
			if alloc[i] < g-1e-6 || alloc[i] > tgt+1e-6 {
				return false
			}
			if alloc[i] < tgt-1e-6 {
				allSatisfied = false
			}
			total += alloc[i]
		}
		if total > capacity+1e-6 {
			return false
		}
		if total < capacity-1e-6 && !allSatisfied {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDegenerate(t *testing.T) {
	if got := AllocateWeighted(100, nil); len(got) != 0 {
		t.Fatal("nil classes")
	}
	if got := AllocateWeighted(0, []Class{{Rate: 1, Ceil: 2, Demand: 2}}); got[0] != 0 {
		t.Fatal("zero capacity")
	}
	// Overcommitted guarantees scale, as in Allocate.
	got := AllocateWeighted(100, []Class{
		{Rate: 100, Ceil: 100, Demand: 100},
		{Rate: 100, Ceil: 100, Demand: 100},
	})
	if !almostEq(got[0], 50) || !almostEq(got[1], 50) {
		t.Fatalf("overcommit: %v", got)
	}
}

func TestDeterministicForEqualInput(t *testing.T) {
	classes := []Class{
		{Rate: 50, Ceil: 500, Demand: 400},
		{Rate: 50, Ceil: 500, Demand: 400},
		{Rate: 50, Ceil: 500, Demand: 100},
	}
	a := Allocate(600, classes)
	b := Allocate(600, classes)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic allocation: %v vs %v", a, b)
		}
	}
	// Symmetric classes receive symmetric shares.
	if !almostEq(a[0], a[1]) {
		t.Fatalf("symmetric classes got %g and %g", a[0], a[1])
	}
}
