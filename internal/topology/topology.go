// Package topology models the hierarchical datacenter network that v-Bundle
// optimizes for: servers attached to top-of-rack (ToR) switches, racks
// grouped into pods under aggregation switches, and pods joined by a core
// layer. ToR up-links are oversubscribed (the paper cites 1:5 to 1:20;
// its testbed uses 8:1), which makes bi-section bandwidth the scarce
// resource v-Bundle's placement tries to preserve.
//
// The package answers two questions for the rest of the system:
//
//   - proximity: how far apart are two servers (hop count, message latency)?
//   - load: given a set of inter-VM flows, how much traffic crosses rack
//     and pod boundaries, and how utilized are the shared up-links?
package topology

import (
	"fmt"
	"time"
)

// Spec describes a datacenter to build. The zero value is not valid; use
// DefaultSpec or fill in every field.
type Spec struct {
	// Racks is the number of top-of-rack switches.
	Racks int
	// ServersPerRack is the number of servers attached to each ToR.
	ServersPerRack int
	// RacksPerPod groups racks under one aggregation switch. If zero, a
	// single pod spans the whole datacenter.
	RacksPerPod int
	// NICMbps is the line rate of every server NIC, in Mbps.
	NICMbps float64
	// Oversubscription is the ratio between the total server bandwidth in a
	// rack and its ToR up-link capacity (the paper's testbed uses 8).
	// Values below 1 are treated as 1 (non-oversubscribed).
	Oversubscription float64
	// LANHop is the one-way latency contributed by each switch level a
	// message crosses. The paper's overhead measurements (§V.C, Fig. 14)
	// observe about 10 ms per additional tree level on their LAN.
	LANHop time.Duration
	// LocalDelivery is the latency for messages between co-located
	// endpoints (same server).
	LocalDelivery time.Duration
}

// DefaultSpec mirrors the paper's simulated setup: 70 racks of about 43
// servers (~3000 total), 1 Gbps NICs, 8:1 oversubscribed ToR up-links and
// the ~10 ms LAN hop latency from §V.C.
func DefaultSpec() Spec {
	return Spec{
		Racks:            70,
		ServersPerRack:   43,
		RacksPerPod:      10,
		NICMbps:          1000,
		Oversubscription: 8,
		LANHop:           10 * time.Millisecond,
		LocalDelivery:    50 * time.Microsecond,
	}
}

// Validate reports whether the spec describes a buildable datacenter.
func (s Spec) Validate() error {
	if s.Racks <= 0 {
		return fmt.Errorf("topology: Racks = %d, need > 0", s.Racks)
	}
	if s.ServersPerRack <= 0 {
		return fmt.Errorf("topology: ServersPerRack = %d, need > 0", s.ServersPerRack)
	}
	if s.RacksPerPod < 0 {
		return fmt.Errorf("topology: RacksPerPod = %d, need >= 0", s.RacksPerPod)
	}
	if s.NICMbps <= 0 {
		return fmt.Errorf("topology: NICMbps = %g, need > 0", s.NICMbps)
	}
	return nil
}

// Topology is an immutable realized datacenter network.
type Topology struct {
	spec        Spec
	servers     int
	racksPerPod int
	pods        int
}

// New builds a topology from spec.
func New(spec Spec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rpp := spec.RacksPerPod
	if rpp == 0 || rpp > spec.Racks {
		rpp = spec.Racks
	}
	if spec.Oversubscription < 1 {
		spec.Oversubscription = 1
	}
	return &Topology{
		spec:        spec,
		servers:     spec.Racks * spec.ServersPerRack,
		racksPerPod: rpp,
		pods:        (spec.Racks + rpp - 1) / rpp,
	}, nil
}

// Spec returns the spec the topology was built from.
func (t *Topology) Spec() Spec { return t.spec }

// Servers returns the total number of servers.
func (t *Topology) Servers() int { return t.servers }

// Racks returns the number of racks.
func (t *Topology) Racks() int { return t.spec.Racks }

// Pods returns the number of aggregation pods.
func (t *Topology) Pods() int { return t.pods }

// NICMbps returns the per-server NIC line rate.
func (t *Topology) NICMbps() float64 { return t.spec.NICMbps }

// RackOf returns the rack index of a server. Servers are enumerated rack by
// rack: server i lives in rack i / ServersPerRack, slot i % ServersPerRack.
// This enumeration order matches the nodeId assignment of ids.Scaled, which
// is what makes ring adjacency reflect physical adjacency.
func (t *Topology) RackOf(server int) int {
	t.checkServer(server)
	return server / t.spec.ServersPerRack
}

// SlotOf returns the position of a server within its rack.
func (t *Topology) SlotOf(server int) int {
	t.checkServer(server)
	return server % t.spec.ServersPerRack
}

// PodOf returns the pod index of a rack.
func (t *Topology) PodOf(rack int) int {
	if rack < 0 || rack >= t.spec.Racks {
		panic(fmt.Sprintf("topology: rack %d out of range [0,%d)", rack, t.spec.Racks))
	}
	return rack / t.racksPerPod
}

// SameRack reports whether two servers share a ToR switch.
func (t *Topology) SameRack(a, b int) bool { return t.RackOf(a) == t.RackOf(b) }

// SamePod reports whether two servers share an aggregation switch.
func (t *Topology) SamePod(a, b int) bool {
	return t.PodOf(t.RackOf(a)) == t.PodOf(t.RackOf(b))
}

// Tier identifies the highest network layer a path between two servers
// crosses.
type Tier int

// Path tiers, ordered by distance.
const (
	// TierLocal is communication within one server (no network crossing).
	TierLocal Tier = iota + 1
	// TierRack crosses only the shared ToR switch.
	TierRack
	// TierPod crosses the pod's aggregation switch.
	TierPod
	// TierCore crosses the datacenter core (bi-section traffic).
	TierCore
)

// String returns the tier name.
func (ti Tier) String() string {
	switch ti {
	case TierLocal:
		return "local"
	case TierRack:
		return "rack"
	case TierPod:
		return "pod"
	case TierCore:
		return "core"
	default:
		return fmt.Sprintf("Tier(%d)", int(ti))
	}
}

// TierBetween classifies the path between two servers.
func (t *Topology) TierBetween(a, b int) Tier {
	switch {
	case a == b:
		return TierLocal
	case t.SameRack(a, b):
		return TierRack
	case t.SamePod(a, b):
		return TierPod
	default:
		return TierCore
	}
}

// HopCount returns the number of switch traversals on the path between two
// servers: 0 locally, 1 via the ToR, 3 via ToR-agg-ToR, 5 via the core.
func (t *Topology) HopCount(a, b int) int {
	switch t.TierBetween(a, b) {
	case TierLocal:
		return 0
	case TierRack:
		return 1
	case TierPod:
		return 3
	default:
		return 5
	}
}

// Latency returns the one-way message latency between two servers under the
// spec's LAN hop model: LocalDelivery within a server, and one LANHop per
// tier level crossed otherwise.
func (t *Topology) Latency(a, b int) time.Duration {
	switch t.TierBetween(a, b) {
	case TierLocal:
		return t.spec.LocalDelivery
	case TierRack:
		return t.spec.LANHop
	case TierPod:
		return 2 * t.spec.LANHop
	default:
		return 3 * t.spec.LANHop
	}
}

// ToRUplinkMbps returns the capacity of one rack's up-link to the
// aggregation layer, after oversubscription.
func (t *Topology) ToRUplinkMbps() float64 {
	return float64(t.spec.ServersPerRack) * t.spec.NICMbps / t.spec.Oversubscription
}

func (t *Topology) checkServer(server int) {
	if server < 0 || server >= t.servers {
		panic(fmt.Sprintf("topology: server %d out of range [0,%d)", server, t.servers))
	}
}

// Flow is a unidirectional traffic stream between two servers.
type Flow struct {
	// Src and Dst are server indices.
	Src, Dst int
	// Mbps is the offered rate of the flow.
	Mbps float64
}

// LoadReport summarizes how a set of flows stresses the shared network.
type LoadReport struct {
	// IntraServerMbps is traffic that never leaves a server.
	IntraServerMbps float64
	// IntraRackMbps crosses only ToR switches.
	IntraRackMbps float64
	// IntraPodMbps crosses aggregation switches but not the core.
	IntraPodMbps float64
	// BisectionMbps crosses the core layer: the scarce resource.
	BisectionMbps float64
	// RackUplinkMbps[r] is the total traffic entering or leaving rack r
	// through its ToR up-link.
	RackUplinkMbps []float64
	// MaxUplinkUtilization is the highest ToR up-link utilization in
	// [0, +inf) relative to ToRUplinkMbps (values above 1 mean saturation).
	MaxUplinkUtilization float64
}

// CrossRackMbps returns all traffic that leaves its source rack.
func (r LoadReport) CrossRackMbps() float64 { return r.IntraPodMbps + r.BisectionMbps }

// TotalMbps returns the sum of all flow rates.
func (r LoadReport) TotalMbps() float64 {
	return r.IntraServerMbps + r.IntraRackMbps + r.IntraPodMbps + r.BisectionMbps
}

// Load aggregates the given flows into a LoadReport.
func (t *Topology) Load(flows []Flow) LoadReport {
	rep := LoadReport{RackUplinkMbps: make([]float64, t.spec.Racks)}
	for _, f := range flows {
		switch t.TierBetween(f.Src, f.Dst) {
		case TierLocal:
			rep.IntraServerMbps += f.Mbps
		case TierRack:
			rep.IntraRackMbps += f.Mbps
		case TierPod:
			rep.IntraPodMbps += f.Mbps
			rep.RackUplinkMbps[t.RackOf(f.Src)] += f.Mbps
			rep.RackUplinkMbps[t.RackOf(f.Dst)] += f.Mbps
		default:
			rep.BisectionMbps += f.Mbps
			rep.RackUplinkMbps[t.RackOf(f.Src)] += f.Mbps
			rep.RackUplinkMbps[t.RackOf(f.Dst)] += f.Mbps
		}
	}
	cap := t.ToRUplinkMbps()
	for _, load := range rep.RackUplinkMbps {
		if u := load / cap; u > rep.MaxUplinkUtilization {
			rep.MaxUplinkUtilization = u
		}
	}
	return rep
}
