package topology

import (
	"testing"
	"testing/quick"
	"time"
)

func small(t *testing.T) *Topology {
	t.Helper()
	tp, err := New(Spec{
		Racks:            6,
		ServersPerRack:   4,
		RacksPerPod:      2,
		NICMbps:          1000,
		Oversubscription: 8,
		LANHop:           10 * time.Millisecond,
		LocalDelivery:    50 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tp
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"default", DefaultSpec(), true},
		{"zero racks", Spec{ServersPerRack: 1, NICMbps: 1}, false},
		{"zero servers", Spec{Racks: 1, NICMbps: 1}, false},
		{"zero nic", Spec{Racks: 1, ServersPerRack: 1}, false},
		{"negative pod", Spec{Racks: 1, ServersPerRack: 1, NICMbps: 1, RacksPerPod: -1}, false},
		{"minimal", Spec{Racks: 1, ServersPerRack: 1, NICMbps: 1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.spec)
			if (err == nil) != tc.ok {
				t.Errorf("New(%+v) err = %v, want ok=%v", tc.spec, err, tc.ok)
			}
		})
	}
}

func TestEnumeration(t *testing.T) {
	tp := small(t)
	if tp.Servers() != 24 {
		t.Fatalf("Servers = %d, want 24", tp.Servers())
	}
	if tp.Pods() != 3 {
		t.Fatalf("Pods = %d, want 3", tp.Pods())
	}
	// Server 0..3 rack 0; 4..7 rack 1; etc.
	for i := 0; i < tp.Servers(); i++ {
		if got, want := tp.RackOf(i), i/4; got != want {
			t.Fatalf("RackOf(%d) = %d, want %d", i, got, want)
		}
		if got, want := tp.SlotOf(i), i%4; got != want {
			t.Fatalf("SlotOf(%d) = %d, want %d", i, got, want)
		}
	}
	if tp.PodOf(0) != 0 || tp.PodOf(1) != 0 || tp.PodOf(2) != 1 || tp.PodOf(5) != 2 {
		t.Fatal("PodOf grouping wrong")
	}
}

func TestTiers(t *testing.T) {
	tp := small(t)
	tests := []struct {
		a, b int
		want Tier
		hops int
	}{
		{0, 0, TierLocal, 0},
		{0, 3, TierRack, 1},
		{0, 4, TierPod, 3},  // racks 0 and 1, same pod
		{0, 8, TierCore, 5}, // racks 0 and 2, different pods
		{8, 11, TierRack, 1},
		{8, 15, TierPod, 3},
		{23, 0, TierCore, 5},
	}
	for _, tc := range tests {
		if got := tp.TierBetween(tc.a, tc.b); got != tc.want {
			t.Errorf("TierBetween(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tp.HopCount(tc.a, tc.b); got != tc.hops {
			t.Errorf("HopCount(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.hops)
		}
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierLocal: "local", TierRack: "rack", TierPod: "pod", TierCore: "core", Tier(99): "Tier(99)",
	} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, want)
		}
	}
}

func TestLatencyMonotoneInTier(t *testing.T) {
	tp := small(t)
	l0 := tp.Latency(0, 0)
	l1 := tp.Latency(0, 1)
	l2 := tp.Latency(0, 4)
	l3 := tp.Latency(0, 8)
	if !(l0 < l1 && l1 < l2 && l2 < l3) {
		t.Fatalf("latency not monotone: %v %v %v %v", l0, l1, l2, l3)
	}
	if l1 != 10*time.Millisecond || l3 != 30*time.Millisecond {
		t.Fatalf("latency model: rack=%v core=%v", l1, l3)
	}
}

func TestLatencySymmetric(t *testing.T) {
	tp := small(t)
	f := func(a, b uint8) bool {
		x, y := int(a)%tp.Servers(), int(b)%tp.Servers()
		return tp.Latency(x, y) == tp.Latency(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToRUplink(t *testing.T) {
	tp := small(t)
	// 4 servers × 1000 Mbps / 8 = 500 Mbps.
	if got := tp.ToRUplinkMbps(); got != 500 {
		t.Fatalf("ToRUplinkMbps = %g, want 500", got)
	}
}

func TestLoadClassification(t *testing.T) {
	tp := small(t)
	flows := []Flow{
		{Src: 0, Dst: 0, Mbps: 10},  // local
		{Src: 0, Dst: 1, Mbps: 20},  // rack
		{Src: 0, Dst: 5, Mbps: 40},  // pod
		{Src: 0, Dst: 20, Mbps: 80}, // core
	}
	rep := tp.Load(flows)
	if rep.IntraServerMbps != 10 || rep.IntraRackMbps != 20 ||
		rep.IntraPodMbps != 40 || rep.BisectionMbps != 80 {
		t.Fatalf("classification wrong: %+v", rep)
	}
	if rep.CrossRackMbps() != 120 {
		t.Fatalf("CrossRackMbps = %g, want 120", rep.CrossRackMbps())
	}
	if rep.TotalMbps() != 150 {
		t.Fatalf("TotalMbps = %g, want 150", rep.TotalMbps())
	}
	// Rack 0 uplink carries the pod flow (40) and core flow (80).
	if rep.RackUplinkMbps[0] != 120 {
		t.Fatalf("rack 0 uplink = %g, want 120", rep.RackUplinkMbps[0])
	}
	if rep.RackUplinkMbps[1] != 40 || rep.RackUplinkMbps[5] != 80 {
		t.Fatalf("uplinks: %v", rep.RackUplinkMbps)
	}
	if want := 120.0 / 500.0; rep.MaxUplinkUtilization != want {
		t.Fatalf("MaxUplinkUtilization = %g, want %g", rep.MaxUplinkUtilization, want)
	}
}

func TestLoadConservation(t *testing.T) {
	tp := small(t)
	f := func(pairs []struct{ A, B uint8 }) bool {
		var flows []Flow
		var total float64
		for _, p := range pairs {
			fl := Flow{Src: int(p.A) % tp.Servers(), Dst: int(p.B) % tp.Servers(), Mbps: 1}
			flows = append(flows, fl)
			total++
		}
		rep := tp.Load(flows)
		return rep.TotalMbps() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSinglePodWhenRacksPerPodZero(t *testing.T) {
	tp, err := New(Spec{Racks: 5, ServersPerRack: 2, NICMbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Pods() != 1 {
		t.Fatalf("Pods = %d, want 1", tp.Pods())
	}
	// With one pod there is no core traffic.
	if tier := tp.TierBetween(0, tp.Servers()-1); tier != TierPod {
		t.Fatalf("TierBetween ends = %v, want pod", tier)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tp := small(t)
	for _, fn := range []func(){
		func() { tp.RackOf(-1) },
		func() { tp.RackOf(tp.Servers()) },
		func() { tp.PodOf(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDefaultSpecSize(t *testing.T) {
	tp, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if tp.Servers() != 3010 {
		t.Fatalf("default servers = %d, want 3010 (≈ paper's 3000)", tp.Servers())
	}
}
