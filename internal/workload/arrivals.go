package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// ArrivalProcess generates request arrival gaps in virtual time. All draws
// come from the caller-owned rng, so a stream is deterministic for a given
// seed regardless of what else the simulation interleaves.
type ArrivalProcess interface {
	// Next returns the gap from virtual time t to the next arrival.
	Next(t time.Duration, rng *rand.Rand) time.Duration
}

// Poisson is a homogeneous Poisson arrival process: exponential gaps with
// mean 1/PerSec.
type Poisson struct {
	// PerSec is the mean arrival rate per second of virtual time.
	PerSec float64
}

// Next implements ArrivalProcess.
func (p Poisson) Next(_ time.Duration, rng *rand.Rand) time.Duration {
	return expGap(p.PerSec, rng)
}

// FlashCrowd is a non-homogeneous Poisson process: the Base rate, multiplied
// by Multiplier inside the window [Start, Start+Length). Sampling uses
// Lewis–Shedler thinning against the peak rate, so the stream is exact for
// the time-varying intensity, not an approximation.
type FlashCrowd struct {
	// Base is the background arrival rate per second.
	Base float64
	// Multiplier scales the rate inside the flash window (≥ 1).
	Multiplier float64
	// Start and Length bound the flash window in virtual time.
	Start, Length time.Duration
}

// RateAt returns the instantaneous arrival rate at virtual time t.
func (f FlashCrowd) RateAt(t time.Duration) float64 {
	if t >= f.Start && t < f.Start+f.Length && f.Multiplier > 1 {
		return f.Base * f.Multiplier
	}
	return f.Base
}

// Next implements ArrivalProcess via thinning: draw candidate gaps at the
// peak rate and accept each with probability rate(t)/peak.
func (f FlashCrowd) Next(t time.Duration, rng *rand.Rand) time.Duration {
	peak := f.Base
	if f.Multiplier > 1 {
		peak = f.Base * f.Multiplier
	}
	at := t
	for {
		at += expGap(peak, rng)
		if rng.Float64()*peak <= f.RateAt(at) {
			return at - t
		}
	}
}

func expGap(perSec float64, rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() / perSec * float64(time.Second))
}

// CustomerClass is one tier of a boot-request population: Count distinct
// customers sharing an arrival Weight, each booting GroupSize VMs per
// request. A handful of large classes plus a long tail of singleton ones
// reproduces the mixed customer sizes a real front end serves.
type CustomerClass struct {
	// Name prefixes the customers of this class ("big" → big-0, big-1, …).
	Name string
	// Count is how many distinct customers the class holds.
	Count int
	// Weight is the class's share of boot requests (relative; need not
	// sum to 1 across classes).
	Weight float64
	// GroupSize is how many VMs one boot request asks for.
	GroupSize int
}

// Mix draws (customer, group size) pairs from a weighted set of classes.
// Customer names are precomputed so the pick path does not allocate.
type Mix struct {
	classes []CustomerClass
	cum     []float64 // cumulative weights
	total   float64
	names   [][]string
}

// NewMix validates the classes and precomputes the draw tables.
func NewMix(classes []CustomerClass) (*Mix, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: empty customer mix")
	}
	m := &Mix{classes: classes, cum: make([]float64, len(classes)), names: make([][]string, len(classes))}
	for i, c := range classes {
		if c.Count <= 0 || c.Weight <= 0 || c.GroupSize <= 0 {
			return nil, fmt.Errorf("workload: class %q needs positive count, weight and group size", c.Name)
		}
		m.total += c.Weight
		m.cum[i] = m.total
		m.names[i] = make([]string, c.Count)
		for j := range m.names[i] {
			m.names[i][j] = fmt.Sprintf("%s-%d", c.Name, j)
		}
	}
	return m, nil
}

// Customers returns the total number of distinct customers in the mix.
func (m *Mix) Customers() int {
	n := 0
	for _, c := range m.classes {
		n += c.Count
	}
	return n
}

// MeanGroup is the weight-averaged VMs per boot request.
func (m *Mix) MeanGroup() float64 {
	sum := 0.0
	for _, c := range m.classes {
		sum += c.Weight * float64(c.GroupSize)
	}
	return sum / m.total
}

// EachCustomer visits every customer in deterministic (class, index) order.
func (m *Mix) EachCustomer(fn func(customer string, class CustomerClass)) {
	for i, ns := range m.names {
		for _, n := range ns {
			fn(n, m.classes[i])
		}
	}
}

// Pick draws one boot request: a customer and how many VMs it boots.
func (m *Mix) Pick(rng *rand.Rand) (customer string, group int) {
	x := rng.Float64() * m.total
	for i, c := range m.cum {
		if x < c || i == len(m.cum)-1 {
			cl := m.classes[i]
			return m.names[i][rng.Intn(cl.Count)], cl.GroupSize
		}
	}
	panic("unreachable")
}
