package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// TraceFromCSV builds a Trace generator from CSV data: one demand sample
// (Mbps) per row, taken from the given zero-based column; rows starting
// with '#' in the first field and a non-numeric header row are skipped.
// step is the interval between consecutive samples.
func TraceFromCSV(r io.Reader, column int, step time.Duration) (Generator, error) {
	if column < 0 {
		return nil, fmt.Errorf("workload: negative column %d", column)
	}
	if step <= 0 {
		return nil, fmt.Errorf("workload: non-positive step %v", step)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow ragged rows
	cr.Comment = '#'
	var values []float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: csv row %d: %w", row, err)
		}
		row++
		if column >= len(rec) {
			return nil, fmt.Errorf("workload: csv row %d has %d fields, need column %d", row, len(rec), column)
		}
		v, err := strconv.ParseFloat(rec[column], 64)
		if err != nil {
			if row == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("workload: csv row %d column %d: %w", row, column, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("workload: csv row %d: negative demand %g", row, v)
		}
		values = append(values, v)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("workload: csv contained no samples")
	}
	return Trace(values, step), nil
}
