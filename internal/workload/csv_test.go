package workload

import (
	"strings"
	"testing"
	"time"
)

func TestTraceFromCSV(t *testing.T) {
	src := strings.NewReader("time,mbps\n# comment line\n0,10\n1,20\n2,35.5\n")
	g, err := TraceFromCSV(src, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[time.Duration]float64{
		0:               10,
		time.Minute:     20,
		2 * time.Minute: 35.5,
		time.Hour:       35.5, // holds last value
	}
	for at, want := range cases {
		if got := g.DemandAt(at); got != want {
			t.Errorf("at %v = %g, want %g", at, got, want)
		}
	}
}

func TestTraceFromCSVErrors(t *testing.T) {
	cases := map[string]struct {
		data   string
		column int
		step   time.Duration
	}{
		"empty":             {"", 0, time.Second},
		"header only":       {"mbps\n", 0, time.Second},
		"negative value":    {"10\n-5\n", 0, time.Second},
		"bad number midway": {"10\nxyz\n", 0, time.Second},
		"missing column":    {"10\n", 3, time.Second},
		"negative column":   {"10\n", -1, time.Second},
		"zero step":         {"10\n", 0, 0},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := TraceFromCSV(strings.NewReader(tc.data), tc.column, tc.step); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestTraceFromCSVRaggedRows(t *testing.T) {
	// Extra fields in some rows are fine as long as the column exists.
	src := strings.NewReader("5,extra,fields\n7\n")
	g, err := TraceFromCSV(src, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g.DemandAt(0) != 5 || g.DemandAt(time.Second) != 7 {
		t.Fatal("ragged parse wrong")
	}
}
