package workload

import (
	"time"

	"vbundle/internal/cluster"
	"vbundle/internal/sim"
)

// Driver binds generators to VMs and refreshes their bandwidth demands on a
// fixed virtual-time cadence, modelling the hosted applications' changing
// load.
type Driver struct {
	engine *sim.Engine
	cl     *cluster.Cluster
	gens   map[cluster.VMID]Generator
	ticker *sim.Ticker
	onTick []func(t time.Duration)
}

// NewDriver creates a driver over the given cluster.
func NewDriver(engine *sim.Engine, cl *cluster.Cluster) *Driver {
	return &Driver{engine: engine, cl: cl, gens: make(map[cluster.VMID]Generator)}
}

// Attach binds a generator to a VM, replacing any previous binding.
func (d *Driver) Attach(id cluster.VMID, gen Generator) {
	d.gens[id] = gen
}

// OnTick registers fn to run after each demand refresh.
func (d *Driver) OnTick(fn func(t time.Duration)) {
	d.onTick = append(d.onTick, fn)
}

// Refresh sets every attached VM's bandwidth demand to its generator value
// at the current virtual time.
func (d *Driver) Refresh() {
	now := d.engine.Now()
	for id, gen := range d.gens {
		if vm := d.cl.VM(id); vm != nil {
			vm.Demand.BandwidthMbps = gen.DemandAt(now)
		}
	}
	for _, fn := range d.onTick {
		fn(now)
	}
}

// Start refreshes immediately and then every interval. It is idempotent.
func (d *Driver) Start(interval time.Duration) {
	if d.ticker != nil {
		return
	}
	d.Refresh()
	d.ticker = d.engine.EveryGlobal(interval, d.Refresh)
}

// Stop halts periodic refreshes.
func (d *Driver) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}
