// Package workload generates the VM bandwidth demands that drive the
// v-Bundle experiments: simple analytic generators (flat, ramp, sine,
// bursty) for the large-scale rebalancing simulations, and models of the
// two applications the paper's testbed evaluation runs — SIPp, a SIP call
// generator whose QoS (failed calls, response time) degrades when starved
// of bandwidth, and Iperf, a greedy bulk-traffic source used to create
// contention (§V.A).
package workload

import (
	"math"
	"math/rand"
	"time"
)

// Generator produces a bandwidth demand (Mbps) as a function of virtual
// time.
type Generator interface {
	DemandAt(t time.Duration) float64
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(t time.Duration) float64

// DemandAt calls f.
func (f GeneratorFunc) DemandAt(t time.Duration) float64 { return f(t) }

var _ Generator = GeneratorFunc(nil)

// Flat returns a constant demand.
func Flat(mbps float64) Generator {
	return GeneratorFunc(func(time.Duration) float64 { return mbps })
}

// Ramp grows linearly from start by slope Mbps per second, clamped to
// [0, max].
func Ramp(start, slopePerSec, max float64) Generator {
	return GeneratorFunc(func(t time.Duration) float64 {
		v := start + slopePerSec*t.Seconds()
		if v > max {
			v = max
		}
		if v < 0 {
			v = 0
		}
		return v
	})
}

// Sine oscillates around base with the given amplitude and period; phase
// shifts the cycle so different VMs peak at different times. Values are
// clamped at zero.
func Sine(base, amplitude float64, period time.Duration, phase float64) Generator {
	return GeneratorFunc(func(t time.Duration) float64 {
		v := base + amplitude*math.Sin(2*math.Pi*(t.Seconds()/period.Seconds())+phase)
		if v < 0 {
			v = 0
		}
		return v
	})
}

// Bursty alternates between a low and a high demand with the given period
// and duty cycle (fraction of the period spent high); phase staggers VMs.
func Bursty(low, high float64, period time.Duration, duty, phase float64) Generator {
	return GeneratorFunc(func(t time.Duration) float64 {
		pos := math.Mod(t.Seconds()/period.Seconds()+phase, 1)
		if pos < 0 {
			pos++
		}
		if pos < duty {
			return high
		}
		return low
	})
}

// Trace replays a fixed sequence of demands, one entry per step, holding
// the last value afterwards.
func Trace(values []float64, step time.Duration) Generator {
	return GeneratorFunc(func(t time.Duration) float64 {
		if len(values) == 0 {
			return 0
		}
		idx := int(t / step)
		if idx >= len(values) {
			idx = len(values) - 1
		}
		if idx < 0 {
			idx = 0
		}
		return values[idx]
	})
}

// SIPp models the paper's SIP traffic generator (§V.A): the call rate
// starts at 800 calls/s and climbs by 10 calls/s every second up to 3000.
// Each established call needs a fixed slice of bandwidth for its RTP media;
// when the VM's allocated bandwidth covers fewer concurrent calls than
// offered, the excess calls fail, and response times inflate with the
// degree of starvation.
type SIPp struct {
	// StartRate, RatePerSec and MaxRate describe the call-rate ramp in
	// calls per second (defaults: 800, 10, 3000).
	StartRate, RatePerSec, MaxRate float64
	// PerCallKbps is the media bandwidth per call (default 32 kb/s, a
	// typical compressed-audio RTP stream).
	PerCallKbps float64
	// BaseRTms is the response time of an unstarved call in milliseconds
	// (default 5ms).
	BaseRTms float64
	// rng adds jitter to response-time samples.
	rng *rand.Rand

	totalCalls  int
	failedCalls int
}

// NewSIPp creates a SIPp instance with the paper's ramp parameters.
func NewSIPp(seed int64) *SIPp {
	return &SIPp{
		StartRate:   800,
		RatePerSec:  10,
		MaxRate:     3000,
		PerCallKbps: 32,
		BaseRTms:    5,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// OfferedRate returns the call rate (calls/s) at time t.
func (s *SIPp) OfferedRate(t time.Duration) float64 {
	r := s.StartRate + s.RatePerSec*t.Seconds()
	if r > s.MaxRate {
		r = s.MaxRate
	}
	return r
}

// DemandAt implements Generator: the bandwidth needed to carry the full
// offered call rate.
func (s *SIPp) DemandAt(t time.Duration) float64 {
	return s.OfferedRate(t) * s.PerCallKbps / 1000
}

var _ Generator = (*SIPp)(nil)

// StepResult reports one evaluation interval of the SIPp workload.
type StepResult struct {
	// OfferedCalls and FailedCalls count calls in the interval.
	OfferedCalls, FailedCalls int
	// ResponseTimesMs samples the response times of a subset of the
	// interval's successful calls.
	ResponseTimesMs []float64
}

// maxRTSamplesPerStep bounds the per-step response-time sampling.
const maxRTSamplesPerStep = 50

// Step evaluates one interval of length dt ending at time t, given the
// bandwidth actually allocated to the SIPp VM. Calls beyond the allocated
// capacity fail; the remainder succeed with response times that grow as
// allocation falls short of demand (queueing at the starved NIC).
func (s *SIPp) Step(t, dt time.Duration, allocatedMbps float64) StepResult {
	offeredRate := s.OfferedRate(t)
	offered := int(offeredRate * dt.Seconds())
	capacityRate := allocatedMbps * 1000 / s.PerCallKbps // calls/s the pipe carries
	carried := int(capacityRate * dt.Seconds())
	failed := 0
	if carried < offered {
		failed = offered - carried
	}
	s.totalCalls += offered
	s.failedCalls += failed

	// Response time: unstarved calls answer at BaseRT with mild jitter;
	// as utilization of the allocation approaches 1 the M/M/1-style
	// queueing factor 1/(1-rho) inflates it.
	res := StepResult{OfferedCalls: offered, FailedCalls: failed}
	succeeded := offered - failed
	samples := succeeded
	if samples > maxRTSamplesPerStep {
		samples = maxRTSamplesPerStep
	}
	rho := 0.0
	if capacityRate > 0 {
		rho = offeredRate / capacityRate
	} else {
		rho = 1
	}
	if rho > 0.99 {
		rho = 0.99
	}
	for i := 0; i < samples; i++ {
		rt := s.BaseRTms / (1 - rho)
		rt *= 0.8 + 0.4*s.rng.Float64() // ±20% jitter
		res.ResponseTimesMs = append(res.ResponseTimesMs, rt)
	}
	return res
}

// Totals returns cumulative offered and failed call counts.
func (s *SIPp) Totals() (offered, failed int) { return s.totalCalls, s.failedCalls }

// Iperf models the greedy bulk-TCP interference workload: it demands its
// configured target rate from start onward (Iperf pairs run continuously
// in the paper's testbed to create the bandwidth bottleneck).
type Iperf struct {
	// TargetMbps is the stream's offered rate.
	TargetMbps float64
	// Start is when the stream begins.
	Start time.Duration
}

// DemandAt implements Generator.
func (ip *Iperf) DemandAt(t time.Duration) float64 {
	if t < ip.Start {
		return 0
	}
	return ip.TargetMbps
}

var _ Generator = (*Iperf)(nil)
