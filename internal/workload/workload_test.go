package workload

import (
	"math"
	"testing"
	"time"

	"vbundle/internal/cluster"
	"vbundle/internal/sim"
	"vbundle/internal/topology"
)

func TestFlat(t *testing.T) {
	g := Flat(100)
	if g.DemandAt(0) != 100 || g.DemandAt(time.Hour) != 100 {
		t.Fatal("flat not flat")
	}
}

func TestRamp(t *testing.T) {
	g := Ramp(10, 2, 20)
	if g.DemandAt(0) != 10 {
		t.Fatal("ramp start")
	}
	if g.DemandAt(3*time.Second) != 16 {
		t.Fatalf("ramp mid = %g", g.DemandAt(3*time.Second))
	}
	if g.DemandAt(time.Minute) != 20 {
		t.Fatal("ramp clamp high")
	}
	if Ramp(5, -10, 100).DemandAt(time.Second) != 0 {
		t.Fatal("ramp clamp low")
	}
}

func TestSine(t *testing.T) {
	g := Sine(100, 50, time.Minute, 0)
	if v := g.DemandAt(0); math.Abs(v-100) > 1e-9 {
		t.Fatalf("sine at 0 = %g", v)
	}
	if v := g.DemandAt(15 * time.Second); math.Abs(v-150) > 1e-9 {
		t.Fatalf("sine at quarter = %g", v)
	}
	if v := g.DemandAt(45 * time.Second); math.Abs(v-50) > 1e-9 {
		t.Fatalf("sine at three-quarter = %g", v)
	}
	// Never negative even when amplitude exceeds base.
	deep := Sine(10, 100, time.Minute, 0)
	for s := 0; s < 60; s++ {
		if deep.DemandAt(time.Duration(s)*time.Second) < 0 {
			t.Fatal("sine went negative")
		}
	}
}

func TestBursty(t *testing.T) {
	g := Bursty(10, 90, time.Minute, 0.25, 0)
	if g.DemandAt(0) != 90 {
		t.Fatal("burst start should be high")
	}
	if g.DemandAt(30*time.Second) != 10 {
		t.Fatal("burst off phase should be low")
	}
	if g.DemandAt(time.Minute) != 90 {
		t.Fatal("burst periodic")
	}
	shifted := Bursty(10, 90, time.Minute, 0.25, 0.5)
	if shifted.DemandAt(0) != 10 {
		t.Fatal("phase shift ignored")
	}
}

func TestTrace(t *testing.T) {
	g := Trace([]float64{1, 2, 3}, time.Second)
	cases := map[time.Duration]float64{
		0: 1, 500 * time.Millisecond: 1, time.Second: 2, 2 * time.Second: 3, time.Hour: 3,
	}
	for at, want := range cases {
		if got := g.DemandAt(at); got != want {
			t.Errorf("trace at %v = %g, want %g", at, got, want)
		}
	}
	if Trace(nil, time.Second).DemandAt(0) != 0 {
		t.Fatal("empty trace should be zero")
	}
}

func TestSIPpRamp(t *testing.T) {
	s := NewSIPp(1)
	if got := s.OfferedRate(0); got != 800 {
		t.Fatalf("initial rate %g", got)
	}
	if got := s.OfferedRate(10 * time.Second); got != 900 {
		t.Fatalf("rate at 10s = %g", got)
	}
	if got := s.OfferedRate(time.Hour); got != 3000 {
		t.Fatalf("rate should cap at 3000, got %g", got)
	}
	// Demand is rate × per-call bandwidth.
	if got := s.DemandAt(0); math.Abs(got-800*32/1000.0) > 1e-9 {
		t.Fatalf("demand at 0 = %g", got)
	}
}

func TestSIPpStepUnstarved(t *testing.T) {
	s := NewSIPp(1)
	// Allocation covers the full demand: no failures, fast responses.
	demand := s.DemandAt(0)
	res := s.Step(0, time.Second, demand*2)
	if res.FailedCalls != 0 {
		t.Fatalf("failed = %d with surplus bandwidth", res.FailedCalls)
	}
	if res.OfferedCalls != 800 {
		t.Fatalf("offered = %d", res.OfferedCalls)
	}
	for _, rt := range res.ResponseTimesMs {
		if rt > 15 {
			t.Fatalf("unstarved RT %g ms too high", rt)
		}
	}
}

func TestSIPpStepStarved(t *testing.T) {
	s := NewSIPp(1)
	demand := s.DemandAt(0)
	res := s.Step(0, time.Second, demand/4)
	if res.FailedCalls != 600 { // 800 offered, pipe carries 200
		t.Fatalf("failed = %d, want 600", res.FailedCalls)
	}
	slow := 0
	for _, rt := range res.ResponseTimesMs {
		if rt > 10 {
			slow++
		}
	}
	if slow < len(res.ResponseTimesMs)/2 {
		t.Fatalf("starved responses suspiciously fast: %v", res.ResponseTimesMs)
	}
	offered, failed := s.Totals()
	if offered != 800 || failed != 600 {
		t.Fatalf("totals %d/%d", offered, failed)
	}
}

func TestSIPpZeroAllocation(t *testing.T) {
	s := NewSIPp(1)
	res := s.Step(0, time.Second, 0)
	if res.FailedCalls != res.OfferedCalls {
		t.Fatal("zero allocation should fail every call")
	}
}

func TestIperf(t *testing.T) {
	ip := &Iperf{TargetMbps: 300, Start: 10 * time.Second}
	if ip.DemandAt(5*time.Second) != 0 {
		t.Fatal("iperf started early")
	}
	if ip.DemandAt(10*time.Second) != 300 || ip.DemandAt(time.Hour) != 300 {
		t.Fatal("iperf rate wrong")
	}
}

func TestDriverRefreshesDemands(t *testing.T) {
	tp, err := topology.New(topology.Spec{Racks: 1, ServersPerRack: 2, NICMbps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine(1)
	cl := cluster.New(tp, cluster.Resources{CPU: 8, MemMB: 1024})
	vm, _ := cl.CreateVM("a", cluster.Resources{BandwidthMbps: 10}, cluster.Resources{BandwidthMbps: 1000})
	if err := cl.Place(vm, 0); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(engine, cl)
	d.Attach(vm.ID, Ramp(0, 1, 1000))
	ticks := 0
	d.OnTick(func(time.Duration) { ticks++ })
	d.Start(10 * time.Second)
	if vm.Demand.BandwidthMbps != 0 {
		t.Fatalf("initial refresh demand = %g", vm.Demand.BandwidthMbps)
	}
	engine.RunUntil(35 * time.Second)
	d.Stop()
	engine.Run()
	if vm.Demand.BandwidthMbps != 30 {
		t.Fatalf("demand after 30s = %g, want 30", vm.Demand.BandwidthMbps)
	}
	if ticks != 4 { // t=0 (Start) + 3 periodic
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	// Idempotent start, stop.
	d.Start(time.Second)
	d.Stop()
	d.Stop()
}
