// Memory-regression tests: the scale ladder in EXPERIMENTS.md depends on
// per-server allocation cost staying flat as rings grow, and that property
// has silently regressed before (a reintroduced per-node map shows up as a
// few hundred bytes per server — invisible in any small-ring test, gigabytes
// at the 1048576 rung). These tests pin it numerically.
package vbundle

import (
	"runtime"
	"testing"

	"vbundle/internal/experiments"
)

// TestFig14BytesPerServerCeiling builds the full 32768-server Fig. 14 stack
// once and asserts the total bytes allocated per server stays under a fixed
// ceiling. The current cost is ~7.1 KB/server (engine + topology + pastry
// arenas + scribe + aggregation + the run's message traffic); the ceiling
// leaves ~20% headroom for legitimate drift. If this fails after a change,
// compare `go test -bench 'Fig14Scale32768' -benchmem` against the previous
// commit and check the alloc-site top-10 recipe in DESIGN.md ("Profiling
// methodology") before raising it: at 1048576 servers every extra KB/server
// is another gigabyte of heap.
func TestFig14BytesPerServerCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("32768-server ring; run without -short")
	}
	const servers = 32768
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	out, err := experiments.RunAggLatency(experiments.AggLatencyParams{
		Sizes: []int{servers}, Seed: 1, Parallelism: 1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if out.Points[0].TreeHeight == 0 {
		t.Fatal("degenerate run: aggregation tree has height 0")
	}
	perServer := float64(after.TotalAlloc-before.TotalAlloc) / servers
	const ceilingBytes = 8704 // 8.5 KB/server; measured ~7.1 KB
	if perServer > ceilingBytes {
		t.Fatalf("allocated %.0f B/server at %d servers, ceiling %d — a per-node cost crept back in (see DESIGN.md \"Profiling methodology\")",
			perServer, servers, ceilingBytes)
	}
	t.Logf("%.0f B/server (ceiling %d)", perServer, ceilingBytes)
}
