#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector over the
# short-mode suite (the parallel experiment harness is the only concurrent
# code; -short keeps the race pass fast while still driving it).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race -short"
go test -race -short ./...

# One iteration of every benchmark (a few seconds): catches benchmarks that
# panic or fail to build without measuring anything. -short skips the
# 2048–8192 scale sweeps.
echo "== bench smoke (-benchtime 1x)"
go test -short -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "CI OK"
