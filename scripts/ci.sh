#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector over the
# short-mode suite (the parallel experiment harness is the only concurrent
# code; -short keeps the race pass fast while still driving it).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race -short"
go test -race -short ./...

# The fault-injection paths (lease expiry, release retry, anycast retry,
# orphan release) under the race detector, explicitly and un-shortened.
echo "== resilience tests -race"
go test -race -run 'Resilience|NoLeak|LeaseExpiry|Orphan|Anycast|Fault|Dead|Death' \
	./internal/rebalance/ ./internal/scribe/ ./internal/simnet/ \
	./internal/migration/ ./internal/experiments/

# One small fault sweep end to end: vb-faults exits nonzero if any run
# leaks a reservation or a drop rate fails to parse.
echo "== vb-faults smoke"
go run ./cmd/vb-faults -servers 64 -duration 30 -lease 4 \
	-drop-rates 0,0.02 -seed 5 > /dev/null

# One iteration of every benchmark (a few seconds): catches benchmarks that
# panic or fail to build without measuring anything. -short skips the
# 2048–8192 scale sweeps.
echo "== bench smoke (-benchtime 1x)"
go test -short -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "CI OK"
