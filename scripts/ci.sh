#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector over the
# short-mode suite (the parallel experiment harness is the only concurrent
# code; -short keeps the race pass fast while still driving it).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race -short"
go test -race -short ./...

# The fault-injection paths (lease expiry, release retry, anycast retry,
# orphan release, crash-restart rejoin) under the race detector, explicitly
# and un-shortened. internal/store and internal/core ride along for the
# durable-store and restarter paths.
echo "== resilience tests -race"
go test -race -run 'Resilience|NoLeak|LeaseExpiry|Orphan|Anycast|Fault|Dead|Death|Crash|Restart|Rejoin|Adopt|Store' \
	./internal/rebalance/ ./internal/scribe/ ./internal/simnet/ \
	./internal/migration/ ./internal/experiments/ ./internal/store/ \
	./internal/core/

# The sharded engine and shard-aware delivery under the race detector,
# explicitly and un-shortened: these are the packages where a data race
# would also be a determinism bug.
echo "== shard packages -race"
go test -race ./internal/sim/ ./internal/simnet/

# One small fault sweep end to end: vb-faults exits nonzero if any run
# leaks a reservation or a drop rate fails to parse.
echo "== vb-faults smoke"
go run ./cmd/vb-faults -servers 64 -duration 30 -lease 4 \
	-drop-rates 0,0.02 -seed 5 > /dev/null

# The same sweep with -crash: true crashes (blank handler, durable-store
# reboot, rejoin) plus one node left dead. The binary exits nonzero if any
# run loses a VM or leaks a reservation across the restart — and the run
# must be byte-identical serial vs. sharded.
echo "== vb-faults crash-restart smoke (gate + shard diff)"
go build -o /tmp/vb-faults-ci ./cmd/vb-faults
/tmp/vb-faults-ci -crash -servers 64 -duration 30 -lease 4 \
	-drop-rates 0,0.02 -kill 2 -crash-forever 1 -restart-after 5 \
	-seed 5 -workers 1 > /tmp/vb-crash0.txt
/tmp/vb-faults-ci -crash -servers 64 -duration 30 -lease 4 \
	-drop-rates 0,0.02 -kill 2 -crash-forever 1 -restart-after 5 \
	-seed 5 -workers 1 -shards 4 > /tmp/vb-crash4.txt
diff /tmp/vb-crash0.txt /tmp/vb-crash4.txt
grep -q 'recovered fully' /tmp/vb-crash0.txt || { echo "FAIL: crash-restart gate"; exit 1; }
rm -f /tmp/vb-faults-ci /tmp/vb-crash0.txt /tmp/vb-crash4.txt

# Determinism gate for the parallel single-run engine: the same Fig. 14
# experiment at -shards 1 and -shards 4 must print byte-identical metrics.
# Any divergence is a lost event, a reordered merge, or a stray rand draw —
# all fail here before the (slower) equivalence property tests would.
echo "== sharded determinism diff (Fig 14, 512 servers)"
go build -o /tmp/vb-overhead-ci ./cmd/vb-overhead
/tmp/vb-overhead-ci -fig 14 -max-servers 512 -shards 1 -workers 1 > /tmp/vb-shards1.txt
/tmp/vb-overhead-ci -fig 14 -max-servers 512 -shards 4 -workers 1 > /tmp/vb-shards4.txt
diff /tmp/vb-shards1.txt /tmp/vb-shards4.txt

# The same gate at 2048 servers and the widest shard spread (1 vs 8): the
# dynamically-sized drain windows stretch furthest at larger rings — a
# lookahead bug that 512 servers and 4 shards would mask (few in-window
# events per shard) has to survive this point too.
echo "== sharded determinism diff (Fig 14, 2048 servers, dynamic windows, 1 vs 8 shards)"
/tmp/vb-overhead-ci -fig 14 -max-servers 2048 -shards 1 -workers 1 > /tmp/vb-shards1.txt
/tmp/vb-overhead-ci -fig 14 -max-servers 2048 -shards 8 -workers 1 > /tmp/vb-shards4.txt
diff /tmp/vb-shards1.txt /tmp/vb-shards4.txt

# The smallest of the new ladder rungs (524288 servers), single point via
# -min-servers so the gate does not pay for the whole ladder below it. The
# profile-driven allocation work (prefix-group routing-table fill, sorted
# inline-backed slices replacing per-node maps) rewrote the hottest
# construction paths; this is the proof at scale that none of it perturbed
# one byte of virtual time across shard counts.
echo "== sharded determinism diff (Fig 14, 524288 servers, single point, 1 vs 4 shards)"
/tmp/vb-overhead-ci -fig 14 -min-servers 524288 -max-servers 524288 -shards 1 -workers 1 > /tmp/vb-shards1.txt
/tmp/vb-overhead-ci -fig 14 -min-servers 524288 -max-servers 524288 -shards 4 -workers 1 > /tmp/vb-shards4.txt
diff /tmp/vb-shards1.txt /tmp/vb-shards4.txt

# Heap-profile smoke on the 32768-server point: -memprofile must produce a
# non-empty pprof through internal/profiling while the arena-backed ring
# builds and runs. Catches profiling-path rot and any allocation explosion
# at the scale the memory-layout work targets.
echo "== heap profile smoke (Fig 14, 32768 servers)"
/tmp/vb-overhead-ci -fig 14 -max-servers 32768 -shards 4 -workers 1 \
	-memprofile /tmp/vb-heap.pprof > /dev/null
test -s /tmp/vb-heap.pprof || { echo "FAIL: empty heap profile"; exit 1; }
rm -f /tmp/vb-heap.pprof

# Tracing overhead gate: the always-on ring recorder must stay within 5%
# wall time of a recording-free run (min of five, to shave scheduler noise;
# a 2 ms absolute floor keeps timer jitter from failing runs this short)
# and must not change one byte of the printed experiment metrics — the
# recorder observes the simulation, it never participates in it.
echo "== tracing overhead gate (Fig 14, 512 servers, ring recorder)"
min_off=
min_ring=
for i in 1 2 3 4 5; do
	start=$(date +%s%N)
	/tmp/vb-overhead-ci -fig 14 -max-servers 512 -workers 1 > /tmp/vb-trace-off.txt
	us=$(( ($(date +%s%N) - start) / 1000 ))
	if [ -z "$min_off" ] || [ "$us" -lt "$min_off" ]; then min_off=$us; fi

	start=$(date +%s%N)
	/tmp/vb-overhead-ci -fig 14 -max-servers 512 -workers 1 -trace-ring 4096 > /tmp/vb-trace-ring.txt
	us=$(( ($(date +%s%N) - start) / 1000 ))
	if [ -z "$min_ring" ] || [ "$us" -lt "$min_ring" ]; then min_ring=$us; fi
done
diff /tmp/vb-trace-off.txt /tmp/vb-trace-ring.txt
awk -v off="$min_off" -v ring="$min_ring" 'BEGIN {
	printf "tracing off %.1f ms, ring %.1f ms (%+.1f%%)\n", off / 1000.0, ring / 1000.0, (ring - off) * 100.0 / off
	if (ring > off * 1.05 && ring > off + 2000) { print "FAIL: ring recorder regresses wall time beyond 5%"; exit 1 }
}'
rm -f /tmp/vb-overhead-ci /tmp/vb-shards1.txt /tmp/vb-shards4.txt \
	/tmp/vb-trace-off.txt /tmp/vb-trace-ring.txt

# Serving-layer smoke: a Poisson stream and a flash crowd at 512 servers
# end to end through vb-serve (the binary exits nonzero on any leaked
# reservation or unresolved boot), then the sharded-determinism gate on the
# serving path — the rendered serve report at -shards 1 and -shards 4 must
# be byte-identical. The hygiene lines are also asserted explicitly so a
# future change to the binary's exit behaviour cannot silently weaken this.
echo "== vb-serve smoke (Poisson + flash crowd, 512 servers, shard diff)"
go build -o /tmp/vb-serve-ci ./cmd/vb-serve
/tmp/vb-serve-ci -servers 512 -rate 100 -duration 20s -prewarm 2 \
	-cache -batch -seed 7 -shards 1 > /tmp/vb-serve1.txt
/tmp/vb-serve-ci -servers 512 -rate 100 -duration 20s -prewarm 2 \
	-cache -batch -seed 7 -shards 4 > /tmp/vb-serve4.txt
diff /tmp/vb-serve1.txt /tmp/vb-serve4.txt
grep -q '^leaked reservations: 0$' /tmp/vb-serve1.txt || { echo "FAIL: leaked reservations"; exit 1; }
grep -q '^unresolved boots: 0$' /tmp/vb-serve1.txt || { echo "FAIL: unresolved boots"; exit 1; }
/tmp/vb-serve-ci -servers 512 -rate 100 -duration 20s -prewarm 2 \
	-cache -batch -flash-mult 10 -flash-start 6s -flash-len 5s -max-inflight 64 \
	-seed 7 > /tmp/vb-serve-flash.txt
grep -q 'flash window: requests=[0-9]* shed=[1-9]' /tmp/vb-serve-flash.txt || { echo "FAIL: flash crowd shed nothing"; exit 1; }
grep -q '^leaked reservations: 0$' /tmp/vb-serve-flash.txt || { echo "FAIL: leaked reservations under flash"; exit 1; }
grep -q '^unresolved boots: 0$' /tmp/vb-serve-flash.txt || { echo "FAIL: unresolved boots under flash"; exit 1; }
rm -f /tmp/vb-serve-ci /tmp/vb-serve1.txt /tmp/vb-serve4.txt /tmp/vb-serve-flash.txt

# Alloc-ceiling smoke: the 2048-server Fig. 14 point with -benchmem, gated
# on allocs/op. Allocation counts are deterministic (unlike wall time on the
# shared CI box), so this catches a reintroduced per-node map or closure at
# the cheapest rung that still builds a real multi-rack ring. Current cost
# is ~41.6k allocs; the ceiling leaves ~25% headroom.
echo "== alloc ceiling smoke (Fig 14, 2048 servers)"
go test -run '^$' -bench 'BenchmarkFig14Scale/servers=2048$' -benchtime 1x -benchmem . > /tmp/vb-alloc.txt
allocs=$(awk '/servers=2048/ {print $(NF-1)}' /tmp/vb-alloc.txt)
[ -n "$allocs" ] || { echo "FAIL: no allocs/op parsed"; cat /tmp/vb-alloc.txt; exit 1; }
[ "$allocs" -le 52000 ] || { echo "FAIL: $allocs allocs/op at 2048 servers exceeds ceiling 52000"; exit 1; }
echo "allocs/op at 2048 servers: $allocs (ceiling 52000)"
rm -f /tmp/vb-alloc.txt

# One iteration of every benchmark (a few seconds): catches benchmarks that
# panic or fail to build without measuring anything. -short skips the
# 2048–8192 scale sweeps.
echo "== bench smoke (-benchtime 1x)"
go test -short -run '^$' -bench . -benchtime 1x ./... > /dev/null

# Online-audit gate: the invariant auditor sweeps a real 512-server Fig. 14
# run (liveness coherence under churn) and a full vb-serve stack (lease
# balance, lease expiry, placement agreement, liveness) and must find zero
# violations across a healthy run's sweeps. The auditor is read-only and
# reports to stderr only, so stdout must stay byte-identical with -audit on
# and off — the same zero-interference contract the tracer holds.
echo "== online audit gate (Fig 14 512 + vb-serve, zero violations, stdout diff)"
go build -o /tmp/vb-overhead-ci ./cmd/vb-overhead
go build -o /tmp/vb-serve-ci ./cmd/vb-serve
/tmp/vb-overhead-ci -fig 14 -min-servers 512 -max-servers 512 -workers 1 \
	> /tmp/vb-audit-off.txt
/tmp/vb-overhead-ci -fig 14 -min-servers 512 -max-servers 512 -workers 1 \
	-audit -audit-every 10ms > /tmp/vb-audit-on.txt 2> /tmp/vb-audit.err
diff /tmp/vb-audit-off.txt /tmp/vb-audit-on.txt
grep -Eq '^audit: sweeps=[1-9][0-9]* violations=0$' /tmp/vb-audit.err \
	|| { echo "FAIL: fig14 audit gate"; cat /tmp/vb-audit.err; exit 1; }
/tmp/vb-serve-ci -servers 512 -rate 100 -duration 20s -prewarm 2 \
	-cache -batch -seed 7 > /tmp/vb-audit-off.txt
/tmp/vb-serve-ci -servers 512 -rate 100 -duration 20s -prewarm 2 \
	-cache -batch -seed 7 -audit > /tmp/vb-audit-on.txt 2> /tmp/vb-audit.err
diff /tmp/vb-audit-off.txt /tmp/vb-audit-on.txt
grep -Eq '^audit: sweeps=[1-9][0-9]* violations=0$' /tmp/vb-audit.err \
	|| { echo "FAIL: vb-serve audit gate"; cat /tmp/vb-audit.err; exit 1; }

# Sampler overhead gate: the virtual-time series sampler at a 1 s cadence
# must stay within 5% wall time of an unsampled vb-serve run (min of five,
# 2 ms absolute floor, as for the tracing gate above) and must not change
# one byte of the printed serve report — sampling observes boundaries, it
# never participates in the run.
echo "== sampler overhead gate (vb-serve 512 servers, 1s cadence)"
min_off=
min_smp=
for i in 1 2 3 4 5; do
	start=$(date +%s%N)
	/tmp/vb-serve-ci -servers 512 -rate 100 -duration 20s -prewarm 2 \
		-cache -batch -seed 7 > /tmp/vb-smp-off.txt
	us=$(( ($(date +%s%N) - start) / 1000 ))
	if [ -z "$min_off" ] || [ "$us" -lt "$min_off" ]; then min_off=$us; fi

	start=$(date +%s%N)
	/tmp/vb-serve-ci -servers 512 -rate 100 -duration 20s -prewarm 2 \
		-cache -batch -seed 7 -sample-every 1s > /tmp/vb-smp-on.txt
	us=$(( ($(date +%s%N) - start) / 1000 ))
	if [ -z "$min_smp" ] || [ "$us" -lt "$min_smp" ]; then min_smp=$us; fi
done
diff /tmp/vb-smp-off.txt /tmp/vb-smp-on.txt
awk -v off="$min_off" -v smp="$min_smp" 'BEGIN {
	printf "sampling off %.1f ms, on %.1f ms (%+.1f%%)\n", off / 1000.0, smp / 1000.0, (smp - off) * 100.0 / off
	if (smp > off * 1.05 && smp > off + 2000) { print "FAIL: series sampler regresses wall time beyond 5%"; exit 1 }
}'
rm -f /tmp/vb-overhead-ci /tmp/vb-serve-ci /tmp/vb-audit-off.txt \
	/tmp/vb-audit-on.txt /tmp/vb-audit.err /tmp/vb-smp-off.txt /tmp/vb-smp-on.txt

echo "CI OK"
